package poly

import (
	"fmt"
)

// ParallelLevels reports, per loop level (0-based), whether the loop can
// run its iterations in parallel: no dependence is carried at that
// level. Reduction dependences do not count — the parallel-reduction
// runtime privatizes the accumulator per worker, so the carried
// read-modify-write cycle they describe dissolves.
func ParallelLevels(n *Nest, deps []*Dep) []bool {
	out := make([]bool, n.Depth())
	for i := range out {
		out[i] = true
	}
	for _, d := range deps {
		if d.Level >= 1 && !d.Reduction {
			out[d.Level-1] = false
		}
	}
	return out
}

// OutermostParallel returns the 0-based outermost parallel level, or -1.
func OutermostParallel(parallel []bool) int {
	for i, p := range parallel {
		if p {
			return i
		}
	}
	return -1
}

// Permutable reports whether the loop band [0..depth) is fully
// permutable, i.e. every dependence has non-negative distance in every
// band dimension — the legality condition for rectangular tiling
// (paper Fig. 2: the valid tiling exists exactly when all arrows point
// forward in every dimension).
func Permutable(n *Nest, deps []*Dep) bool {
	for _, d := range deps {
		if d.Level == 0 || d.Reduction {
			// Reduction dependences permit any iteration order (the
			// accumulator is privatized), so they never block tiling.
			continue
		}
		for _, e := range d.Dist {
			if e.Known && e.Val < 0 {
				return false
			}
			if !e.Known && (!e.HasMin || e.Min < 0) {
				return false
			}
		}
	}
	return true
}

// LegalSkew computes the smallest skew factor f ≥ 0 such that replacing
// the level-(l+1) iterator j by j' = j + f·i (i the level-l iterator)
// makes every dependence distance non-negative in dimension l+1. This is
// the shearing transformation of the paper's Fig. 2. It requires the
// negative components to be compensated by a strictly positive component
// at level l; otherwise ok is false.
func LegalSkew(deps []*Dep, l int) (f int64, ok bool) {
	for _, d := range deps {
		if d.Level == 0 || d.Reduction || l+1 >= len(d.Dist) {
			continue
		}
		outer, inner := d.Dist[l], d.Dist[l+1]
		var innerMin int64
		switch {
		case inner.Known:
			innerMin = inner.Val
		case inner.HasMin:
			innerMin = inner.Min
		default:
			return 0, false
		}
		if innerMin >= 0 {
			continue
		}
		var outerMin int64
		switch {
		case outer.Known:
			outerMin = outer.Val
		case outer.HasMin:
			outerMin = outer.Min
		default:
			return 0, false
		}
		if outerMin <= 0 {
			return 0, false // cannot compensate
		}
		need := ceilDiv(-innerMin, outerMin)
		if need > f {
			f = need
		}
	}
	return f, true
}

// ApplySkew returns a new nest with iterator level l+1 skewed by factor f
// against level l: the new iterator j' satisfies j' = j + f·i, so the
// domain and all accesses substitute j = j' − f·i.
func ApplySkew(n *Nest, l int, f int64) *Nest {
	if f == 0 {
		return n
	}
	i := n.Iters[l]
	j := n.Iters[l+1]
	jNew := j + "'"
	subst := func(a Affine) Affine {
		cj := a.CoefOf(j)
		if cj == 0 {
			return a.Clone()
		}
		r := a.Clone()
		delete(r.Coef, j)
		// j = j' - f*i
		r = r.Add(Var(jNew).Scale(cj)).Add(Var(i).Scale(-f * cj))
		return r
	}
	out := &Nest{
		Iters:  append([]string{}, n.Iters...),
		Params: append([]string{}, n.Params...),
		Domain: NewSystem(),
	}
	out.Iters[l+1] = jNew
	for _, c := range n.Domain.Cons {
		out.Domain.Add(Constraint{Expr: subst(c.Expr), Rel: c.Rel})
	}
	for _, s := range n.Stmts {
		ns := &Statement{ID: s.ID, Seq: s.Seq, Label: s.Label}
		for _, a := range s.Reads {
			ns.Reads = append(ns.Reads, substAccess(a, subst))
		}
		for _, a := range s.Writes {
			ns.Writes = append(ns.Writes, substAccess(a, subst))
		}
		out.Stmts = append(out.Stmts, ns)
	}
	return out
}

func substAccess(a Access, subst func(Affine) Affine) Access {
	na := Access{Array: a.Array, Write: a.Write,
		Reduction: a.Reduction, Star: a.Star, Expr: a.Expr}
	for _, s := range a.Subs {
		na.Subs = append(na.Subs, subst(s))
	}
	return na
}

// ----------------------------------------------------------------------------
// Loop generation (CLooG's role)

// Loop is one generated loop of a transformed nest: iterate Iter from
// max(Lowers) to min(Uppers), optionally in parallel, with an optional
// vectorization hint on the innermost loop (the SICA analog).
type Loop struct {
	Iter     string
	Lowers   []Bound
	Uppers   []Bound
	Parallel bool
	Vector   bool
	Tile     bool // tile (block) loop introduced by tiling
}

// LowerEnv / UpperEnv evaluate the effective integer bounds under env.
func (l Loop) LowerEnv(env map[string]int64) int64 {
	v := l.Lowers[0].Eval(env)
	for _, b := range l.Lowers[1:] {
		if w := b.Eval(env); w > v {
			v = w
		}
	}
	return v
}

// UpperEnv evaluates min over the upper bounds.
func (l Loop) UpperEnv(env map[string]int64) int64 {
	v := l.Uppers[0].Eval(env)
	for _, b := range l.Uppers[1:] {
		if w := b.Eval(env); w < v {
			v = w
		}
	}
	return v
}

// GenNest is a generated loop structure for a transformed nest.
type GenNest struct {
	Loops []Loop
	// Nest is the (possibly transformed) source nest the loops scan.
	Nest *Nest
}

// Generate computes loop bounds for the nest's iterators in order: the
// bounds of iterator k may reference iterators 0..k−1 and parameters,
// obtained by Fourier–Motzkin elimination of the inner iterators.
// parallel marks the per-level parallel flags (may be nil).
func Generate(n *Nest, parallel []bool) (*GenNest, error) {
	g := &GenNest{Nest: n}
	for k, it := range n.Iters {
		elim := append([]string{}, n.Iters[k+1:]...)
		lowers, uppers := n.Domain.SymbolicBounds(it, elim)
		if len(lowers) == 0 || len(uppers) == 0 {
			return nil, fmt.Errorf("iterator %s has no finite bounds", it)
		}
		lp := Loop{Iter: it, Lowers: dedupBounds(lowers), Uppers: dedupBounds(uppers)}
		if parallel != nil && k < len(parallel) {
			lp.Parallel = parallel[k]
		}
		if k == len(n.Iters)-1 {
			lp.Vector = true
		}
		g.Loops = append(g.Loops, lp)
	}
	return g, nil
}

func dedupBounds(bs []Bound) []Bound {
	var out []Bound
	for _, b := range bs {
		dup := false
		for _, o := range out {
			if o.Div == b.Div && o.Ceil == b.Ceil && o.Expr.Equal(b.Expr) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}

// Tile applies rectangular tiling with the given sizes to the nest's
// loops (size 0 or 1 leaves a level untiled) and returns the generated
// tiled loop structure: tile loops first, then point loops constrained to
// their tile. Tiling must have been proven legal via Permutable (possibly
// after ApplySkew), exactly like PluTo's tiling phase.
func Tile(n *Nest, sizes []int, parallel []bool) (*GenNest, error) {
	tiled := &Nest{
		Params: append([]string{}, n.Params...),
		Domain: n.Domain.Clone(),
		Stmts:  n.Stmts,
	}
	var tileIters []string
	var pointIters []string
	tileFlags := map[string]bool{}
	for k, it := range n.Iters {
		size := 0
		if k < len(sizes) {
			size = sizes[k]
		}
		if size <= 1 {
			pointIters = append(pointIters, it)
			continue
		}
		tit := it + "T"
		tileIters = append(tileIters, tit)
		pointIters = append(pointIters, it)
		tileFlags[tit] = true
		b := int64(size)
		// tit*b <= it <= tit*b + b-1
		tv := Var(tit).Scale(b)
		tiled.Domain.AddGE(Var(it).Sub(tv))
		tiled.Domain.AddGE(tv.Add(NewAffine(b - 1)).Sub(Var(it)))
	}
	tiled.Iters = append(append([]string{}, tileIters...), pointIters...)
	var par []bool
	for _, it := range tiled.Iters {
		if tileFlags[it] {
			// A tile loop is parallel when its point loop level is.
			base := it[:len(it)-1]
			par = append(par, levelParallel(n, parallel, base))
		} else {
			par = append(par, levelParallel(n, parallel, it))
		}
	}
	g, err := Generate(tiled, par)
	if err != nil {
		return nil, err
	}
	for i := range g.Loops {
		g.Loops[i].Tile = tileFlags[g.Loops[i].Iter]
		g.Loops[i].Vector = i == len(g.Loops)-1
	}
	return g, nil
}

func levelParallel(n *Nest, parallel []bool, iter string) bool {
	if parallel == nil {
		return false
	}
	for k, it := range n.Iters {
		if it == iter && k < len(parallel) {
			return parallel[k]
		}
	}
	return false
}
