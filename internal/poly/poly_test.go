package poly

import (
	"testing"
	"testing/quick"

	"purec/internal/parser"
)

// rect builds the 2-D domain 0<=i<ni, 0<=j<nj.
func rect(i, j string, ni, nj int64) *System {
	s := NewSystem()
	s.AddLowerBound(i, NewAffine(0))
	s.AddUpperBound(i, NewAffine(ni-1))
	s.AddLowerBound(j, NewAffine(0))
	s.AddUpperBound(j, NewAffine(nj-1))
	return s
}

func TestAffineArithmetic(t *testing.T) {
	a := Var("i").Scale(2).Add(NewAffine(3)) // 2i+3
	b := Var("i").Sub(Var("j"))              // i-j
	sum := a.Add(b)                          // 3i-j+3
	if sum.CoefOf("i") != 3 || sum.CoefOf("j") != -1 || sum.Const != 3 {
		t.Fatalf("sum: %s", sum)
	}
	if got := sum.Eval(map[string]int64{"i": 2, "j": 5}); got != 4 {
		t.Fatalf("eval: %d", got)
	}
	if s := sum.String(); s != "3*i - j + 3" {
		t.Fatalf("string: %q", s)
	}
}

func TestAffineFromExpr(t *testing.T) {
	classify := func(name string) VarClass {
		switch name {
		case "i", "j":
			return ClassIter
		case "N":
			return ClassParam
		}
		return ClassOther
	}
	cases := []struct {
		src  string
		want string
	}{
		{"i + 1", "i + 1"},
		{"i - 1", "i - 1"},
		{"2 * i + j", "2*i + j"},
		{"N - i - 1", "N - i - 1"},
		{"-(i + j)", "-i - j"},
		{"i * 3", "3*i"},
		{"(i)", "i"},
	}
	for _, c := range cases {
		e, err := parser.ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := FromExpr(e, classify)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if a.String() != c.want {
			t.Errorf("%q: got %q want %q", c.src, a.String(), c.want)
		}
	}
	// non-affine forms
	for _, src := range []string{"i * j", "i / 2", "a[i]", "f(i)", "x"} {
		e, err := parser.ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := FromExpr(e, classify); err == nil {
			t.Errorf("%q: expected ErrNotAffine", src)
		}
	}
}

func TestSystemSatisfiability(t *testing.T) {
	s := rect("i", "j", 10, 10)
	if s.IsEmpty() {
		t.Fatal("rectangle must be non-empty")
	}
	s2 := s.Clone()
	s2.AddGE(Var("i").Sub(NewAffine(20))) // i >= 20 contradicts i <= 9
	if !s2.IsEmpty() {
		t.Fatal("must be empty")
	}
}

func TestEliminationProjection(t *testing.T) {
	// 0<=i<=9, i<=j<=i+2 ; eliminating j keeps 0<=i<=9 satisfiable.
	s := NewSystem()
	s.AddLowerBound("i", NewAffine(0))
	s.AddUpperBound("i", NewAffine(9))
	s.AddLowerBound("j", Var("i"))
	s.AddUpperBound("j", Var("i").Add(NewAffine(2)))
	p := s.Eliminate("j")
	lo, hasLo, hi, hasHi := p.Bounds("i")
	if !hasLo || !hasHi || lo != 0 || hi != 9 {
		t.Fatalf("bounds after projection: [%d(%v), %d(%v)]", lo, hasLo, hi, hasHi)
	}
}

func TestBounds(t *testing.T) {
	s := NewSystem()
	s.AddLowerBound("i", NewAffine(3))
	s.AddUpperBound("i", NewAffine(17))
	lo, hasLo, hi, hasHi := s.Bounds("i")
	if !hasLo || lo != 3 || !hasHi || hi != 17 {
		t.Fatalf("bounds [%d %d]", lo, hi)
	}
}

func TestSymbolicBounds(t *testing.T) {
	// triangular: 0 <= i <= N-1, i <= j <= N-1
	s := NewSystem()
	s.AddLowerBound("i", NewAffine(0))
	s.AddUpperBound("i", Var("N").Sub(NewAffine(1)))
	s.AddLowerBound("j", Var("i"))
	s.AddUpperBound("j", Var("N").Sub(NewAffine(1)))
	lows, ups := s.SymbolicBounds("j", nil)
	if len(lows) != 1 || lows[0].Expr.String() != "i" {
		t.Fatalf("j lowers: %v", lows)
	}
	if len(ups) != 1 || ups[0].Expr.String() != "N - 1" {
		t.Fatalf("j uppers: %v", ups)
	}
}

// Property: FM elimination never loses integer points — any point of the
// original system satisfies the projection (soundness of projection).
func TestEliminationSoundProperty(t *testing.T) {
	f := func(c1, c2, c3 int8, seed uint8) bool {
		s := NewSystem()
		s.AddLowerBound("x", NewAffine(int64(c1)%5))
		s.AddUpperBound("x", NewAffine(int64(c1)%5+7))
		s.AddLowerBound("y", Var("x").Scale(int64(seed%3)-1).Add(NewAffine(int64(c2)%4)))
		s.AddUpperBound("y", Var("x").Add(NewAffine(int64(c3)%6+6)))
		p := s.Eliminate("y")
		// every (x,y) in s must leave x in p
		for x := int64(-10); x <= 20; x++ {
			for y := int64(-20); y <= 30; y++ {
				env := map[string]int64{"x": x, "y": y}
				if s.Satisfies(env) && !p.Satisfies(map[string]int64{"x": x}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Dependence analysis ---

// stencilNest builds: for i,j in [1,n-2]: B[i][j] = A[i-1][j] + A[i][j-1]
// with A==B (in-place) when inPlace, producing loop-carried deps.
func stencilNest(inPlace bool) *Nest {
	n := &Nest{Iters: []string{"i", "j"}, Params: []string{"n"}}
	s := NewSystem()
	s.AddLowerBound("i", NewAffine(1))
	s.AddUpperBound("i", Var("n").Sub(NewAffine(2)))
	s.AddLowerBound("j", NewAffine(1))
	s.AddUpperBound("j", Var("n").Sub(NewAffine(2)))
	n.Domain = s
	readArr := "A"
	writeArr := "B"
	if inPlace {
		writeArr = "A"
	}
	st := &Statement{ID: 0, Seq: 0}
	st.Writes = []Access{{Array: writeArr, Write: true, Subs: []Affine{Var("i"), Var("j")}}}
	st.Reads = []Access{
		{Array: readArr, Subs: []Affine{Var("i").Sub(NewAffine(1)), Var("j")}},
		{Array: readArr, Subs: []Affine{Var("i"), Var("j").Sub(NewAffine(1))}},
	}
	n.Stmts = []*Statement{st}
	return n
}

func TestNoDepsWithDoubleBuffer(t *testing.T) {
	n := stencilNest(false)
	deps := AnalyzeDeps(n)
	for _, d := range deps {
		if d.Level > 0 {
			t.Fatalf("unexpected carried dep: %v", d)
		}
	}
	par := ParallelLevels(n, deps)
	if !par[0] || !par[1] {
		t.Fatalf("both levels must be parallel: %v", par)
	}
}

func TestInPlaceStencilDeps(t *testing.T) {
	n := stencilNest(true)
	deps := AnalyzeDeps(n)
	if len(deps) == 0 {
		t.Fatal("expected dependences")
	}
	par := ParallelLevels(n, deps)
	if par[0] {
		t.Fatalf("outer loop must be serial: %v", par)
	}
	// Distances (1,0) and (0,1) must appear.
	found10, found01 := false, false
	for _, d := range deps {
		if len(d.Dist) == 2 && d.Dist[0].Known && d.Dist[1].Known {
			if d.Dist[0].Val == 1 && d.Dist[1].Val == 0 {
				found10 = true
			}
			if d.Dist[0].Val == 0 && d.Dist[1].Val == 1 {
				found01 = true
			}
		}
	}
	if !found10 || !found01 {
		t.Fatalf("missing uniform distances; deps: %v", deps)
	}
}

// Fig. 2 of the paper: dependences (1,0),(0,1),(1,-1) admit no
// rectangular tiling, but skewing j' = j + i legalizes it.
func TestSkewingLegalizesTiling(t *testing.T) {
	n := &Nest{Iters: []string{"i", "j"}, Params: nil}
	s := rect("i", "j", 16, 16)
	n.Domain = s
	st := &Statement{ID: 0}
	st.Writes = []Access{{Array: "A", Write: true, Subs: []Affine{Var("i"), Var("j")}}}
	st.Reads = []Access{
		{Array: "A", Subs: []Affine{Var("i").Sub(NewAffine(1)), Var("j")}},
		{Array: "A", Subs: []Affine{Var("i"), Var("j").Sub(NewAffine(1))}},
		{Array: "A", Subs: []Affine{Var("i").Sub(NewAffine(1)), Var("j").Add(NewAffine(1))}},
	}
	n.Stmts = []*Statement{st}
	deps := AnalyzeDeps(n)
	if Permutable(n, deps) {
		t.Fatal("nest with dep (1,-1) must not be permutable before skewing (Fig. 2 left)")
	}
	f, ok := LegalSkew(deps, 0)
	if !ok || f != 1 {
		t.Fatalf("skew factor: %d ok=%v, want 1", f, ok)
	}
	skewed := ApplySkew(n, 0, f)
	deps2 := AnalyzeDeps(skewed)
	if !Permutable(skewed, deps2) {
		for _, d := range deps2 {
			t.Logf("dep after skew: %v", d)
		}
		t.Fatal("skewed nest must be permutable (Fig. 2 right)")
	}
}

// Property: dependence analysis agrees with brute-force enumeration of
// conflicting iteration pairs on small in-place stencils.
func TestDepsMatchBruteForceProperty(t *testing.T) {
	f := func(dxu, dyu uint8) bool {
		dx := int64(dxu%3) - 1
		dy := int64(dyu%3) - 1
		if dx == 0 && dy == 0 {
			return true
		}
		// stmt: A[i][j] = A[i+dx][j+dy], domain [1,6]^2
		n := &Nest{Iters: []string{"i", "j"}}
		s := NewSystem()
		s.AddLowerBound("i", NewAffine(1))
		s.AddUpperBound("i", NewAffine(6))
		s.AddLowerBound("j", NewAffine(1))
		s.AddUpperBound("j", NewAffine(6))
		n.Domain = s
		st := &Statement{ID: 0}
		st.Writes = []Access{{Array: "A", Write: true, Subs: []Affine{Var("i"), Var("j")}}}
		st.Reads = []Access{{Array: "A", Subs: []Affine{Var("i").Add(NewAffine(dx)), Var("j").Add(NewAffine(dy))}}}
		n.Stmts = []*Statement{st}
		deps := AnalyzeDeps(n)
		carried := map[int]bool{}
		for _, d := range deps {
			carried[d.Level] = true
		}
		// brute force: pairs (p,q), p lex< q, with write(p)==read(q) or
		// read(p)==write(q)
		bfCarried := map[int]bool{}
		for pi := int64(1); pi <= 6; pi++ {
			for pj := int64(1); pj <= 6; pj++ {
				for qi := int64(1); qi <= 6; qi++ {
					for qj := int64(1); qj <= 6; qj++ {
						if pi == qi && pj == qj {
							continue
						}
						lexLess := pi < qi || (pi == qi && pj < qj)
						if !lexLess {
							continue
						}
						// write at p is (pi,pj); read at q is (qi+dx, qj+dy)
						conflict := (pi == qi+dx && pj == qj+dy) ||
							(pi+dx == qi && pj+dy == qj)
						if !conflict {
							continue
						}
						level := 1
						if pi == qi {
							level = 2
						}
						bfCarried[level] = true
					}
				}
			}
		}
		for l := 1; l <= 2; l++ {
			if bfCarried[l] && !carried[l] {
				return false // analysis missed a real dependence: unsound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- Loop generation ---

func TestGenerateRectangularBounds(t *testing.T) {
	n := stencilNest(false)
	deps := AnalyzeDeps(n)
	g, err := Generate(n, ParallelLevels(n, deps))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Loops) != 2 {
		t.Fatalf("loops: %d", len(g.Loops))
	}
	if !g.Loops[0].Parallel {
		t.Fatal("outer loop must be parallel")
	}
	env := map[string]int64{"n": 10}
	if lo := g.Loops[0].LowerEnv(env); lo != 1 {
		t.Fatalf("outer lower: %d", lo)
	}
	if hi := g.Loops[0].UpperEnv(env); hi != 8 {
		t.Fatalf("outer upper: %d", hi)
	}
	if !g.Loops[1].Vector {
		t.Fatal("innermost loop must carry the vector hint")
	}
}

func TestGenerateTriangular(t *testing.T) {
	n := &Nest{Iters: []string{"i", "j"}, Params: []string{"N"}}
	s := NewSystem()
	s.AddLowerBound("i", NewAffine(0))
	s.AddUpperBound("i", Var("N").Sub(NewAffine(1)))
	s.AddLowerBound("j", Var("i"))
	s.AddUpperBound("j", Var("N").Sub(NewAffine(1)))
	n.Domain = s
	n.Stmts = []*Statement{{ID: 0}}
	g, err := Generate(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]int64{"N": 5, "i": 3}
	if lo := g.Loops[1].LowerEnv(env); lo != 3 {
		t.Fatalf("j lower at i=3: %d", lo)
	}
	if hi := g.Loops[1].UpperEnv(env); hi != 4 {
		t.Fatalf("j upper: %d", hi)
	}
}

func TestTiling(t *testing.T) {
	n := stencilNest(false)
	deps := AnalyzeDeps(n)
	if !Permutable(n, deps) {
		t.Fatal("double-buffered stencil must be permutable")
	}
	g, err := Tile(n, []int{4, 4}, ParallelLevels(n, deps))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Loops) != 4 {
		t.Fatalf("tiled loops: %d", len(g.Loops))
	}
	if !g.Loops[0].Tile || !g.Loops[1].Tile {
		t.Fatal("first two loops must be tile loops")
	}
	if !g.Loops[0].Parallel {
		t.Fatal("outer tile loop must inherit parallelism")
	}
	// Count points scanned by the tiled structure for n=10: must equal 8*8.
	env := map[string]int64{"n": 10}
	count := 0
	var scan func(k int)
	scan = func(k int) {
		if k == len(g.Loops) {
			count++
			return
		}
		lo := g.Loops[k].LowerEnv(env)
		hi := g.Loops[k].UpperEnv(env)
		for v := lo; v <= hi; v++ {
			env[g.Loops[k].Iter] = v
			// check full domain only at the innermost level
			if k == len(g.Loops)-1 {
				if g.Nest.Domain.Satisfies(env) {
					count++
				}
			} else {
				scan(k + 1)
			}
		}
		delete(env, g.Loops[k].Iter)
	}
	// adjust: innermost increments count inside loop, so start recursion
	count = 0
	scan(0)
	if count != 64 {
		t.Fatalf("tiled scan visited %d points, want 64", count)
	}
}

func TestPointsEnumeration(t *testing.T) {
	n := stencilNest(false)
	pts := n.Points(map[string]int64{"n": 5})
	if len(pts) != 9 { // i,j in [1,3]
		t.Fatalf("points: %d", len(pts))
	}
}

func TestDepString(t *testing.T) {
	n := stencilNest(true)
	deps := AnalyzeDeps(n)
	if len(deps) == 0 {
		t.Fatal("no deps")
	}
	s := deps[0].String()
	if s == "" {
		t.Fatal("empty dep string")
	}
}
