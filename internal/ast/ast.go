// Package ast declares the syntax tree of the mini-C dialect.
//
// The tree mirrors the C subset that the paper's tool chain manipulates:
// top-level variable, struct and function declarations; the statement and
// expression forms used by the four evaluation applications; and the pure
// extension on function declarations, pointer declarators and casts
// (paper Listings 1-4). Pragma lines (#pragma scop, #pragma omp ...)
// are first-class statements so that the SCoP marking and OpenMP insertion
// stages of Fig. 1 are plain tree rewrites.
package ast

import "purec/internal/token"

// Node is implemented by every syntax tree node.
type Node interface {
	Pos() token.Pos
}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is implemented by all top-level declaration nodes.
type Decl interface {
	Node
	declNode()
}

// ----------------------------------------------------------------------------
// Types (syntactic form; semantic types live in internal/types)

// BaseKind enumerates the builtin base types of the subset.
type BaseKind int

// Builtin base type kinds.
const (
	Void BaseKind = iota
	Char
	Short
	Int
	Long
	Float
	Double
	Unsigned // unsigned int
	Struct   // struct <Name>
)

var baseNames = [...]string{
	Void:     "void",
	Char:     "char",
	Short:    "short",
	Int:      "int",
	Long:     "long",
	Float:    "float",
	Double:   "double",
	Unsigned: "unsigned",
	Struct:   "struct",
}

// String returns the C spelling of the base kind.
func (b BaseKind) String() string { return baseNames[b] }

// PtrQual records the qualifiers of one pointer level ("*", "pure *",
// "const *").
type PtrQual struct {
	Pure  bool
	Const bool
}

// TypeExpr is a syntactic type: a base type, an optional struct tag, a
// chain of pointer levels (innermost first) and qualifiers on the base.
type TypeExpr struct {
	TypePos    token.Pos
	Pure       bool // pure qualifier on the declared entity (paper Listing 1)
	Const      bool
	Base       BaseKind
	StructName string    // when Base == Struct
	Ptrs       []PtrQual // one entry per '*', outermost last
}

// Pos returns the source position of the type.
func (t *TypeExpr) Pos() token.Pos { return t.TypePos }

// IsPointer reports whether the type has at least one pointer level.
func (t *TypeExpr) IsPointer() bool { return len(t.Ptrs) > 0 }

// Clone returns a deep copy of the type expression.
func (t *TypeExpr) Clone() *TypeExpr {
	if t == nil {
		return nil
	}
	c := *t
	c.Ptrs = append([]PtrQual(nil), t.Ptrs...)
	return &c
}

// ----------------------------------------------------------------------------
// Expressions

// Ident is a use of a name.
type Ident struct {
	NamePos token.Pos
	Name    string
}

// IntLit is an integer literal; Value is the parsed value and Text the
// original spelling.
type IntLit struct {
	LitPos token.Pos
	Value  int64
	Text   string
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos token.Pos
	Value  float64
	Text   string
}

// CharLit is a character constant; Value is its integer value.
type CharLit struct {
	LitPos token.Pos
	Value  int64
	Text   string
}

// StringLit is a string literal; Value is the unquoted value.
type StringLit struct {
	LitPos token.Pos
	Value  string
	Text   string
}

// BinaryExpr is X Op Y for the arithmetic, bit, shift, comparison and
// logical operators.
type BinaryExpr struct {
	X  Expr
	Op token.Kind
	Y  Expr
}

// UnaryExpr is a prefix operator application: -X, !X, ~X, *X, &X, ++X, --X.
type UnaryExpr struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// PostfixExpr is X++ or X--.
type PostfixExpr struct {
	X  Expr
	Op token.Kind
}

// AssignExpr is LHS op= RHS, with Op one of the assignment operators.
type AssignExpr struct {
	LHS Expr
	Op  token.Kind
	RHS Expr
}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// CallExpr is Fun(Args...). The callee is restricted to a plain identifier,
// matching the paper's compiler pass which resolves calls by name against
// its hashset of pure functions.
type CallExpr struct {
	Fun  *Ident
	Args []Expr
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
}

// MemberExpr is X.Name or X->Name.
type MemberExpr struct {
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is (Type)X, including pure casts such as (pure int*)p
// (paper Listing 3).
type CastExpr struct {
	LPos token.Pos
	Type *TypeExpr
	X    Expr
}

// SizeofExpr is sizeof(Type) or sizeof expr; exactly one of Type and X is
// set.
type SizeofExpr struct {
	SizePos token.Pos
	Type    *TypeExpr
	X       Expr
}

// ParenExpr is a parenthesized expression, preserved for faithful
// round-tripping of the source.
type ParenExpr struct {
	LPos token.Pos
	X    Expr
}

// Pos implementations.
func (x *Ident) Pos() token.Pos       { return x.NamePos }
func (x *IntLit) Pos() token.Pos      { return x.LitPos }
func (x *FloatLit) Pos() token.Pos    { return x.LitPos }
func (x *CharLit) Pos() token.Pos     { return x.LitPos }
func (x *StringLit) Pos() token.Pos   { return x.LitPos }
func (x *BinaryExpr) Pos() token.Pos  { return x.X.Pos() }
func (x *UnaryExpr) Pos() token.Pos   { return x.OpPos }
func (x *PostfixExpr) Pos() token.Pos { return x.X.Pos() }
func (x *AssignExpr) Pos() token.Pos  { return x.LHS.Pos() }
func (x *CondExpr) Pos() token.Pos    { return x.Cond.Pos() }
func (x *CallExpr) Pos() token.Pos    { return x.Fun.Pos() }
func (x *IndexExpr) Pos() token.Pos   { return x.X.Pos() }
func (x *MemberExpr) Pos() token.Pos  { return x.X.Pos() }
func (x *CastExpr) Pos() token.Pos    { return x.LPos }
func (x *SizeofExpr) Pos() token.Pos  { return x.SizePos }
func (x *ParenExpr) Pos() token.Pos   { return x.LPos }

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*CharLit) exprNode()     {}
func (*StringLit) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*AssignExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*CallExpr) exprNode()    {}
func (*IndexExpr) exprNode()   {}
func (*MemberExpr) exprNode()  {}
func (*CastExpr) exprNode()    {}
func (*SizeofExpr) exprNode()  {}
func (*ParenExpr) exprNode()   {}

// ----------------------------------------------------------------------------
// Statements

// VarDecl declares one variable: scalar, pointer or fixed-size array.
// It appears both as a statement (DeclStmt) and at file scope (wrapped in
// VarDeclGroup).
type VarDecl struct {
	Type      *TypeExpr
	Name      string
	NamePos   token.Pos
	ArrayLens []Expr // one per array dimension; nil for scalars/pointers
	Init      Expr   // optional initializer
}

// Pos returns the position of the declared name.
func (d *VarDecl) Pos() token.Pos { return d.NamePos }

// DeclStmt is a declaration in statement position; one C declaration line
// may declare several variables.
type DeclStmt struct {
	Decls []*VarDecl
}

// ExprStmt is an expression evaluated for its effect.
type ExprStmt struct {
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct {
	SemiPos token.Pos
}

// BlockStmt is { ... }.
type BlockStmt struct {
	LBrace token.Pos
	List   []Stmt
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	IfPos token.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // nil when absent
}

// ForStmt is for (Init; Cond; Post) Body. Init is either a DeclStmt or an
// ExprStmt (or nil).
type ForStmt struct {
	ForPos token.Pos
	Init   Stmt
	Cond   Expr
	Post   Expr
	Body   Stmt
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     Expr
	Body     Stmt
}

// DoStmt is do Body while (Cond);.
type DoStmt struct {
	DoPos token.Pos
	Body  Stmt
	Cond  Expr
}

// ReturnStmt is return [X];.
type ReturnStmt struct {
	RetPos token.Pos
	X      Expr // nil for bare return
}

// BreakStmt is break;.
type BreakStmt struct {
	BreakPos token.Pos
}

// ContinueStmt is continue;.
type ContinueStmt struct {
	ContPos token.Pos
}

// SwitchStmt is switch (Tag) { Cases... }.
type SwitchStmt struct {
	SwitchPos token.Pos
	Tag       Expr
	Cases     []*CaseClause
}

// CaseClause is one case or default clause of a switch.
type CaseClause struct {
	CasePos token.Pos
	Value   Expr // nil for default
	Body    []Stmt
}

// PragmaStmt is a #pragma line in statement position; Text is the full
// line including "#pragma". The SCoP markers and OpenMP directives of the
// paper's pipeline are PragmaStmts.
type PragmaStmt struct {
	PragmaPos token.Pos
	Text      string
}

// Pos implementations.
func (s *DeclStmt) Pos() token.Pos {
	if len(s.Decls) > 0 {
		return s.Decls[0].Pos()
	}
	return token.Pos{}
}
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *EmptyStmt) Pos() token.Pos    { return s.SemiPos }
func (s *BlockStmt) Pos() token.Pos    { return s.LBrace }
func (s *IfStmt) Pos() token.Pos       { return s.IfPos }
func (s *ForStmt) Pos() token.Pos      { return s.ForPos }
func (s *WhileStmt) Pos() token.Pos    { return s.WhilePos }
func (s *DoStmt) Pos() token.Pos       { return s.DoPos }
func (s *ReturnStmt) Pos() token.Pos   { return s.RetPos }
func (s *BreakStmt) Pos() token.Pos    { return s.BreakPos }
func (s *ContinueStmt) Pos() token.Pos { return s.ContPos }
func (s *SwitchStmt) Pos() token.Pos   { return s.SwitchPos }
func (s *CaseClause) Pos() token.Pos   { return s.CasePos }
func (s *PragmaStmt) Pos() token.Pos   { return s.PragmaPos }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*EmptyStmt) stmtNode()    {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoStmt) stmtNode()       {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*SwitchStmt) stmtNode()   {}
func (*PragmaStmt) stmtNode()   {}

// ----------------------------------------------------------------------------
// Declarations

// Param is one function parameter.
type Param struct {
	Type    *TypeExpr
	Name    string
	NamePos token.Pos
}

// FuncDecl is a function prototype (Body == nil) or definition. Pure
// records the paper's pure modifier on the function itself; the pure
// qualifier on the return pointer, if any, lives in Ret.
type FuncDecl struct {
	Pure    bool
	Static  bool
	Inline  bool
	Ret     *TypeExpr
	Name    string
	NamePos token.Pos
	Params  []Param
	Body    *BlockStmt
}

// VarDeclGroup is a file-scope declaration line (possibly declaring
// several variables).
type VarDeclGroup struct {
	Decls []*VarDecl
}

// Field is one member of a struct declaration.
type Field struct {
	Type      *TypeExpr
	Name      string
	NamePos   token.Pos
	ArrayLens []Expr
}

// StructDecl declares struct Name { Fields... };.
type StructDecl struct {
	StructPos token.Pos
	Name      string
	Fields    []Field
}

// PragmaDecl is a #pragma line at file scope.
type PragmaDecl struct {
	PragmaPos token.Pos
	Text      string
}

// Pos implementations.
func (d *FuncDecl) Pos() token.Pos { return d.NamePos }
func (d *VarDeclGroup) Pos() token.Pos {
	if len(d.Decls) > 0 {
		return d.Decls[0].Pos()
	}
	return token.Pos{}
}
func (d *StructDecl) Pos() token.Pos { return d.StructPos }
func (d *PragmaDecl) Pos() token.Pos { return d.PragmaPos }

func (*FuncDecl) declNode()     {}
func (*VarDeclGroup) declNode() {}
func (*StructDecl) declNode()   {}
func (*PragmaDecl) declNode()   {}

// File is one translation unit after preprocessing.
type File struct {
	Name  string
	Decls []Decl
}

// Pos returns the position of the first declaration.
func (f *File) Pos() token.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return token.Pos{File: f.Name, Line: 1, Col: 1}
}

// Funcs returns the function declarations of the file in order.
func (f *File) Funcs() []*FuncDecl {
	var out []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			out = append(out, fd)
		}
	}
	return out
}

// LookupFunc returns the function definition (preferred) or prototype
// named name, or nil.
func (f *File) LookupFunc(name string) *FuncDecl {
	var proto *FuncDecl
	for _, d := range f.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok || fd.Name != name {
			continue
		}
		if fd.Body != nil {
			return fd
		}
		if proto == nil {
			proto = fd
		}
	}
	return proto
}
