package ast

import "purec/internal/token"

// Visitor is invoked by Walk for each node; if the result is false the
// children of the node are not visited.
type Visitor func(Node) bool

// Walk traverses the tree rooted at n in depth-first order, calling v for
// every node before its children. Nil nodes are skipped.
func Walk(n Node, v Visitor) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *FuncDecl:
		for i := range x.Params {
			Walk(x.Params[i].Type, v)
		}
		Walk(x.Ret, v)
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *VarDeclGroup:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *VarDecl:
		Walk(x.Type, v)
		for _, l := range x.ArrayLens {
			Walk(l, v)
		}
		Walk(x.Init, v)
	case *StructDecl:
		for i := range x.Fields {
			Walk(x.Fields[i].Type, v)
			for _, l := range x.Fields[i].ArrayLens {
				Walk(l, v)
			}
		}
	case *PragmaDecl, *PragmaStmt, *TypeExpr:
		// leaves
	case *DeclStmt:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *ExprStmt:
		Walk(x.X, v)
	case *BlockStmt:
		for _, s := range x.List {
			Walk(s, v)
		}
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *ForStmt:
		Walk(x.Init, v)
		Walk(x.Cond, v)
		Walk(x.Post, v)
		Walk(x.Body, v)
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *DoStmt:
		Walk(x.Body, v)
		Walk(x.Cond, v)
	case *ReturnStmt:
		Walk(x.X, v)
	case *SwitchStmt:
		Walk(x.Tag, v)
		for _, c := range x.Cases {
			Walk(c, v)
		}
	case *CaseClause:
		Walk(x.Value, v)
		for _, s := range x.Body {
			Walk(s, v)
		}
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *PostfixExpr:
		Walk(x.X, v)
	case *AssignExpr:
		Walk(x.LHS, v)
		Walk(x.RHS, v)
	case *CondExpr:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *CallExpr:
		Walk(x.Fun, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *IndexExpr:
		Walk(x.X, v)
		Walk(x.Index, v)
	case *MemberExpr:
		Walk(x.X, v)
	case *CastExpr:
		Walk(x.Type, v)
		Walk(x.X, v)
	case *SizeofExpr:
		Walk(x.Type, v)
		Walk(x.X, v)
	case *ParenExpr:
		Walk(x.X, v)
	}
}

// isNilNode reports whether n is a typed nil inside the Node interface.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *TypeExpr:
		return x == nil
	case *BlockStmt:
		return x == nil
	case *Ident:
		return x == nil
	case *VarDecl:
		return x == nil
	}
	// Expr/Stmt interface values holding nil pointers of other concrete
	// types do not occur: the parser never stores them.
	return false
}

// Calls returns every call expression under n in source order.
func Calls(n Node) []*CallExpr {
	var out []*CallExpr
	Walk(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// Idents returns every identifier use under n in source order.
func Idents(n Node) []*Ident {
	var out []*Ident
	Walk(n, func(m Node) bool {
		if id, ok := m.(*Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// Assignments returns every assignment expression under n, including
// compound assignments; ++/-- are reported separately by IncDecs.
func Assignments(n Node) []*AssignExpr {
	var out []*AssignExpr
	Walk(n, func(m Node) bool {
		if a, ok := m.(*AssignExpr); ok {
			out = append(out, a)
		}
		return true
	})
	return out
}

// MinMaxUpdate matches the canonical guarded min/max accumulator
// update statements with a plain scalar accumulator:
//
//	if (x < m) m = x;            (if-pattern; also with m on the left)
//	m = x < m ? x : m;           (conditional form; also keep-current)
//
// returning the accumulator identifier m (the assignment target), the
// data expression x, and the direction: token.LSS for a minimum
// ("replace m when the data is smaller"), token.GTR for a maximum.
// It is MinMaxUpdateLV restricted to identifier targets.
func MinMaxUpdate(s Stmt) (m *Ident, data Expr, dir token.Kind, ok bool) {
	target, data, dir, ok := MinMaxUpdateLV(s)
	if !ok {
		return nil, nil, 0, false
	}
	id, okID := unparen(target).(*Ident)
	if !okID {
		return nil, nil, 0, false
	}
	return id, data, dir, true
}

// MinMaxUpdateLV generalizes MinMaxUpdate to any lvalue target,
// covering the array-element accumulators of array reductions
// (`if (x < lo[b[i]]) lo[b[i]] = x;` and its `?:` form). The target
// expression must be syntactically identical everywhere it appears in
// the pattern (compared by printed form), and the data expression must
// not mention the target's base variable at all — a read of the
// accumulator array through another subscript is a real dependence,
// not a reduction. Only strict comparisons qualify — with <= or >= a
// tie overwrites the accumulator, which is not the fold the parallel
// combine performs (observable through float signed zeros).
func MinMaxUpdateLV(s Stmt) (target Expr, data Expr, dir token.Kind, ok bool) {
	fail := func() (Expr, Expr, token.Kind, bool) { return nil, nil, 0, false }
	switch x := s.(type) {
	case *IfStmt:
		if x.Else != nil {
			return fail()
		}
		cond, okC := unparen(x.Cond).(*BinaryExpr)
		if !okC {
			return fail()
		}
		as := singleAssign(x.Then)
		if as == nil || as.Op != token.ASSIGN {
			return fail()
		}
		target = unparen(as.LHS)
		base := BaseIdent(target)
		if base == nil {
			return fail()
		}
		data, smaller, okD := relAgainstExpr(cond, target, base.Name)
		if !okD || PrintExpr(unparen(as.RHS)) != PrintExpr(data) {
			return fail()
		}
		// The if-form takes the data when the condition holds.
		if smaller {
			return target, data, token.LSS, true
		}
		return target, data, token.GTR, true
	case *ExprStmt:
		as, okA := x.X.(*AssignExpr)
		if !okA || as.Op != token.ASSIGN {
			return fail()
		}
		target = unparen(as.LHS)
		base := BaseIdent(target)
		if base == nil {
			return fail()
		}
		ce, okCE := unparen(as.RHS).(*CondExpr)
		if !okCE {
			return fail()
		}
		cond, okC := unparen(ce.Cond).(*BinaryExpr)
		if !okC {
			return fail()
		}
		data, smaller, okD := relAgainstExpr(cond, target, base.Name)
		if !okD {
			return fail()
		}
		then, els := unparen(ce.Then), unparen(ce.Else)
		dataS, targetS := PrintExpr(data), PrintExpr(target)
		takeData := false
		switch {
		case PrintExpr(then) == dataS && PrintExpr(els) == targetS:
			takeData = true // m = cond ? x : m
		case PrintExpr(then) == targetS && PrintExpr(els) == dataS:
			takeData = false // m = cond ? m : x
		default:
			return fail()
		}
		// takeData: data replaces m exactly when the condition holds;
		// otherwise the condition holding keeps m.
		if takeData == smaller {
			return target, data, token.LSS, true
		}
		return target, data, token.GTR, true
	}
	return fail()
}

// BaseIdent returns the base identifier of an lvalue expression: the
// identifier itself, or the root array of an index chain like
// A[i][j]. Nil when the expression has no identifier base.
func BaseIdent(e Expr) *Ident {
	for {
		switch x := unparen(e).(type) {
		case *Ident:
			return x
		case *IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// relAgainstExpr interprets a strict comparison with the accumulator
// lvalue on one side (matched by printed form): it returns the other
// side (the data expression) and whether a true condition means the
// data is smaller than the accumulator. The data side must not mention
// the accumulator's base variable.
func relAgainstExpr(cond *BinaryExpr, target Expr, baseName string) (data Expr, smaller, ok bool) {
	if cond.Op != token.LSS && cond.Op != token.GTR {
		return nil, false, false
	}
	targetS := PrintExpr(target)
	switch {
	case PrintExpr(unparen(cond.X)) == targetS && !mentions(cond.Y, baseName):
		// m < x: data larger when true; m > x: data smaller.
		return cond.Y, cond.Op == token.GTR, true
	case PrintExpr(unparen(cond.Y)) == targetS && !mentions(cond.X, baseName):
		// x < m: data smaller when true; x > m: data larger.
		return cond.X, cond.Op == token.LSS, true
	}
	return nil, false, false
}

func mentions(e Expr, name string) bool {
	found := false
	Walk(e, func(n Node) bool {
		if id, ok := n.(*Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// singleAssign unwraps a statement (possibly a one-statement block)
// into its single assignment expression, nil otherwise.
func singleAssign(s Stmt) *AssignExpr {
	if b, ok := s.(*BlockStmt); ok {
		if len(b.List) != 1 {
			return nil
		}
		s = b.List[0]
	}
	es, ok := s.(*ExprStmt)
	if !ok {
		return nil
	}
	as, ok := es.X.(*AssignExpr)
	if !ok {
		return nil
	}
	return as
}

// Unparen strips any number of enclosing parentheses from an
// expression — the shared helper behind every structural matcher that
// must see through (x).
func Unparen(e Expr) Expr {
	for {
		p, ok := e.(*ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func unparen(e Expr) Expr { return Unparen(e) }

// RewriteExpr applies f to every expression under n bottom-up, replacing
// each expression by f's result. It covers the expression positions of all
// statement and declaration forms.
func RewriteExpr(n Node, f func(Expr) Expr) {
	var rw func(e Expr) Expr
	rw = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		switch x := e.(type) {
		case *BinaryExpr:
			x.X, x.Y = rw(x.X), rw(x.Y)
		case *UnaryExpr:
			x.X = rw(x.X)
		case *PostfixExpr:
			x.X = rw(x.X)
		case *AssignExpr:
			x.LHS, x.RHS = rw(x.LHS), rw(x.RHS)
		case *CondExpr:
			x.Cond, x.Then, x.Else = rw(x.Cond), rw(x.Then), rw(x.Else)
		case *CallExpr:
			for i := range x.Args {
				x.Args[i] = rw(x.Args[i])
			}
		case *IndexExpr:
			x.X, x.Index = rw(x.X), rw(x.Index)
		case *MemberExpr:
			x.X = rw(x.X)
		case *CastExpr:
			x.X = rw(x.X)
		case *SizeofExpr:
			x.X = rw(x.X)
		case *ParenExpr:
			x.X = rw(x.X)
		}
		return f(e)
	}
	var ws func(s Stmt)
	ws = func(s Stmt) {
		switch x := s.(type) {
		case *DeclStmt:
			for _, d := range x.Decls {
				d.Init = rw(d.Init)
				for i := range d.ArrayLens {
					d.ArrayLens[i] = rw(d.ArrayLens[i])
				}
			}
		case *ExprStmt:
			x.X = rw(x.X)
		case *BlockStmt:
			for _, s2 := range x.List {
				ws(s2)
			}
		case *IfStmt:
			x.Cond = rw(x.Cond)
			ws(x.Then)
			if x.Else != nil {
				ws(x.Else)
			}
		case *ForStmt:
			if x.Init != nil {
				ws(x.Init)
			}
			x.Cond = rw(x.Cond)
			x.Post = rw(x.Post)
			ws(x.Body)
		case *WhileStmt:
			x.Cond = rw(x.Cond)
			ws(x.Body)
		case *DoStmt:
			ws(x.Body)
			x.Cond = rw(x.Cond)
		case *ReturnStmt:
			x.X = rw(x.X)
		case *SwitchStmt:
			x.Tag = rw(x.Tag)
			for _, c := range x.Cases {
				c.Value = rw(c.Value)
				for _, s2 := range c.Body {
					ws(s2)
				}
			}
		}
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			RewriteExpr(d, f)
		}
	case *FuncDecl:
		if x.Body != nil {
			ws(x.Body)
		}
	case *VarDeclGroup:
		for _, d := range x.Decls {
			d.Init = rw(d.Init)
			for i := range d.ArrayLens {
				d.ArrayLens[i] = rw(d.ArrayLens[i])
			}
		}
	default:
		if s, ok := n.(Stmt); ok {
			ws(s)
		} else if e, ok := n.(Expr); ok {
			rw(e)
		}
	}
}
