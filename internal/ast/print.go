package ast

import (
	"fmt"
	"strings"
)

// Print renders the file back to C source. The output parses back to an
// equivalent tree (print/parse round trip is property-tested), which is
// what lets the pipeline of Fig. 1 hand text between stages.
func Print(f *File) string {
	var p printer
	for i, d := range f.Decls {
		if i > 0 {
			p.nl()
		}
		p.decl(d)
	}
	return p.b.String()
}

// PrintStmt renders a single statement (used in diagnostics and tests).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e)
	return p.b.String()
}

// PrintType renders a type expression (without a declarator name).
func PrintType(t *TypeExpr) string {
	var p printer
	p.typeAndName(t, "")
	return strings.TrimRight(p.b.String(), " ")
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) w(s string)                { p.b.WriteString(s) }
func (p *printer) f(format string, a ...any) { fmt.Fprintf(&p.b, format, a...) }
func (p *printer) nl()                       { p.b.WriteByte('\n') }
func (p *printer) tab()                      { p.w(strings.Repeat("    ", p.indent)) }

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *FuncDecl:
		p.funcDecl(x)
	case *VarDeclGroup:
		p.tab()
		p.varDecls(x.Decls)
		p.w(";\n")
	case *StructDecl:
		p.f("struct %s {\n", x.Name)
		p.indent++
		for _, fld := range x.Fields {
			p.tab()
			p.typeAndName(fld.Type, fld.Name)
			for _, l := range fld.ArrayLens {
				p.w("[")
				p.expr(l)
				p.w("]")
			}
			p.w(";\n")
		}
		p.indent--
		p.w("};\n")
	case *PragmaDecl:
		p.w(x.Text)
		p.nl()
	}
}

func (p *printer) funcDecl(d *FuncDecl) {
	if d.Pure {
		p.w("pure ")
	}
	if d.Static {
		p.w("static ")
	}
	if d.Inline {
		p.w("inline ")
	}
	p.typeAndName(d.Ret, d.Name)
	p.w("(")
	if len(d.Params) == 0 {
		p.w("void")
	}
	for i, prm := range d.Params {
		if i > 0 {
			p.w(", ")
		}
		p.typeAndName(prm.Type, prm.Name)
	}
	p.w(")")
	if d.Body == nil {
		p.w(";\n")
		return
	}
	p.w(" ")
	p.block(d.Body)
	p.nl()
}

// typeAndName prints a type followed by an optional declarator name,
// e.g. "pure int* p" or "float** A".
func (p *printer) typeAndName(t *TypeExpr, name string) {
	if t.Pure {
		p.w("pure ")
	}
	if t.Const {
		p.w("const ")
	}
	if t.Base == Struct {
		p.f("struct %s", t.StructName)
	} else {
		p.w(t.Base.String())
	}
	p.ptrQuals(t)
	if name != "" {
		p.w(" ")
		p.w(name)
	}
}

// ptrQuals prints the pointer levels of t. A pure qualifier on the
// outermost level is implied by a leading "pure " (t.Pure) and is not
// repeated, reproducing the paper's "pure int*" spelling.
func (p *printer) ptrQuals(t *TypeExpr) {
	for i, q := range t.Ptrs {
		if q.Pure && !(t.Pure && i == len(t.Ptrs)-1) {
			p.w(" pure")
		}
		if q.Const {
			p.w(" const")
		}
		p.w("*")
	}
}

func (p *printer) varDecls(ds []*VarDecl) {
	for i, d := range ds {
		if i == 0 {
			p.typeAndName(d.Type, d.Name)
		} else {
			// Subsequent declarators share the base type but carry their
			// own pointer levels: "float **A, **Bt, **C;".
			p.w(", ")
			p.ptrQuals(d.Type)
			if len(d.Type.Ptrs) > 0 {
				p.w(" ")
			}
			p.w(d.Name)
		}
		for _, l := range d.ArrayLens {
			p.w("[")
			p.expr(l)
			p.w("]")
		}
		if d.Init != nil {
			p.w(" = ")
			p.expr(d.Init)
		}
	}
}

func (p *printer) block(b *BlockStmt) {
	p.w("{\n")
	p.indent++
	for _, s := range b.List {
		p.stmt(s)
	}
	p.indent--
	p.tab()
	p.w("}")
}

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *DeclStmt:
		p.tab()
		p.varDecls(x.Decls)
		p.w(";\n")
	case *ExprStmt:
		p.tab()
		p.expr(x.X)
		p.w(";\n")
	case *EmptyStmt:
		p.tab()
		p.w(";\n")
	case *BlockStmt:
		p.tab()
		p.block(x)
		p.nl()
	case *IfStmt:
		p.tab()
		p.ifTail(x)
	case *ForStmt:
		p.tab()
		p.w("for (")
		switch init := x.Init.(type) {
		case nil:
			p.w(";")
		case *DeclStmt:
			p.varDecls(init.Decls)
			p.w(";")
		case *ExprStmt:
			p.expr(init.X)
			p.w(";")
		case *EmptyStmt:
			p.w(";")
		}
		if x.Cond != nil {
			p.w(" ")
			p.expr(x.Cond)
		}
		p.w(";")
		if x.Post != nil {
			p.w(" ")
			p.expr(x.Post)
		}
		p.w(") ")
		p.stmtAsBody(x.Body)
	case *WhileStmt:
		p.tab()
		p.w("while (")
		p.expr(x.Cond)
		p.w(") ")
		p.stmtAsBody(x.Body)
	case *DoStmt:
		p.tab()
		p.w("do ")
		p.stmtAsBody(x.Body)
		// stmtAsBody ends with newline; back up by printing while on a
		// fresh indented line, which re-parses identically.
		p.tab()
		p.w("while (")
		p.expr(x.Cond)
		p.w(");\n")
	case *ReturnStmt:
		p.tab()
		if x.X == nil {
			p.w("return;\n")
		} else {
			p.w("return ")
			p.expr(x.X)
			p.w(";\n")
		}
	case *BreakStmt:
		p.tab()
		p.w("break;\n")
	case *ContinueStmt:
		p.tab()
		p.w("continue;\n")
	case *SwitchStmt:
		p.tab()
		p.w("switch (")
		p.expr(x.Tag)
		p.w(") {\n")
		for _, c := range x.Cases {
			p.tab()
			if c.Value == nil {
				p.w("default:\n")
			} else {
				p.w("case ")
				p.expr(c.Value)
				p.w(":\n")
			}
			p.indent++
			for _, s2 := range c.Body {
				p.stmt(s2)
			}
			p.indent--
		}
		p.tab()
		p.w("}\n")
	case *PragmaStmt:
		p.w(x.Text)
		p.nl()
	}
}

// ifTail prints an if statement without leading indentation (the caller
// has already indented), so that else-if chains stay on one line.
func (p *printer) ifTail(x *IfStmt) {
	p.w("if (")
	p.expr(x.Cond)
	p.w(") ")
	p.stmtAsBody(x.Then)
	if x.Else == nil {
		return
	}
	p.tab()
	p.w("else ")
	if ei, ok := x.Else.(*IfStmt); ok {
		p.ifTail(ei)
		return
	}
	p.stmtAsBody(x.Else)
}

// stmtAsBody prints a statement used as a control-flow body: blocks print
// inline, other statements print on their own line with extra indentation.
func (p *printer) stmtAsBody(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		p.nl()
		return
	}
	p.nl()
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *printer) expr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		p.w(x.Name)
	case *IntLit:
		if x.Text != "" {
			p.w(x.Text)
		} else {
			p.f("%d", x.Value)
		}
	case *FloatLit:
		if x.Text != "" {
			p.w(x.Text)
		} else {
			p.f("%g", x.Value)
		}
	case *CharLit:
		if x.Text != "" {
			p.w(x.Text)
		} else {
			p.f("'%c'", rune(x.Value))
		}
	case *StringLit:
		if x.Text != "" {
			p.w(x.Text)
		} else {
			p.f("%q", x.Value)
		}
	case *BinaryExpr:
		p.exprPrec(x.X, x.Op.Precedence())
		p.f(" %s ", x.Op)
		p.exprPrec(x.Y, x.Op.Precedence()+1)
	case *UnaryExpr:
		p.w(x.Op.String())
		p.exprPrec(x.X, 11)
	case *PostfixExpr:
		p.exprPrec(x.X, 11)
		p.w(x.Op.String())
	case *AssignExpr:
		p.expr(x.LHS)
		p.f(" %s ", x.Op)
		p.expr(x.RHS)
	case *CondExpr:
		p.exprPrec(x.Cond, 1)
		p.w(" ? ")
		p.expr(x.Then)
		p.w(" : ")
		p.expr(x.Else)
	case *CallExpr:
		p.w(x.Fun.Name)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a)
		}
		p.w(")")
	case *IndexExpr:
		p.exprPrec(x.X, 11)
		p.w("[")
		p.expr(x.Index)
		p.w("]")
	case *MemberExpr:
		p.exprPrec(x.X, 11)
		if x.Arrow {
			p.w("->")
		} else {
			p.w(".")
		}
		p.w(x.Name)
	case *CastExpr:
		p.w("(")
		p.typeAndName(x.Type, "")
		p.w(")")
		p.exprPrec(x.X, 11)
	case *SizeofExpr:
		if x.Type != nil {
			p.w("sizeof(")
			p.typeAndName(x.Type, "")
			p.w(")")
		} else {
			p.w("sizeof ")
			p.exprPrec(x.X, 11)
		}
	case *ParenExpr:
		p.w("(")
		p.expr(x.X)
		p.w(")")
	}
}

// exprPrec prints e, parenthesizing it when its natural precedence is
// lower than min (so the printed text re-parses with the same shape).
func (p *printer) exprPrec(e Expr, min int) {
	prec := 12
	switch x := e.(type) {
	case *BinaryExpr:
		prec = x.Op.Precedence()
	case *AssignExpr, *CondExpr:
		prec = 0
	case *UnaryExpr, *CastExpr:
		prec = 11
	case *ParenExpr:
		p.expr(x)
		return
	}
	if prec < min {
		p.w("(")
		p.expr(e)
		p.w(")")
		return
	}
	p.expr(e)
}
