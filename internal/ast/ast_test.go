package ast_test

import (
	"strings"
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/token"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const walkSrc = `
int g;
pure float f(pure float* a, int n) {
    float s = 0.0f;
    for (int i = 0; i < n; i++)
        s += a[i] * 2.0f;
    if (s > 10.0f) s = 10.0f;
    return s;
}
int main(void) {
    float buf[4];
    return (int)f((pure float*)buf, 4);
}
`

func TestWalkVisitsAllIdents(t *testing.T) {
	f := parse(t, walkSrc)
	names := map[string]int{}
	for _, id := range ast.Idents(f) {
		names[id.Name]++
	}
	for _, want := range []string{"a", "n", "s", "i", "buf", "f"} {
		if names[want] == 0 {
			t.Errorf("identifier %s not visited", want)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	f := parse(t, walkSrc)
	count := 0
	ast.Walk(f, func(n ast.Node) bool {
		count++
		_, isFunc := n.(*ast.FuncDecl)
		return !isFunc // do not descend into functions
	})
	// file + global group + its decl + its type + 2 pruned functions
	if count != 6 {
		t.Fatalf("visited %d nodes, want 6", count)
	}
}

func TestCalls(t *testing.T) {
	f := parse(t, walkSrc)
	calls := ast.Calls(f)
	if len(calls) != 1 || calls[0].Fun.Name != "f" {
		t.Fatalf("calls: %v", calls)
	}
}

func TestAssignments(t *testing.T) {
	f := parse(t, walkSrc)
	as := ast.Assignments(f)
	// s += ..., s = 10.0f
	if len(as) != 2 {
		t.Fatalf("assignments: %d", len(as))
	}
	if as[0].Op != token.ADDASSIGN || as[1].Op != token.ASSIGN {
		t.Fatalf("ops: %v %v", as[0].Op, as[1].Op)
	}
}

func TestRewriteExpr(t *testing.T) {
	f := parse(t, `
int main(void) {
    int x = 0;
    x = x + marker;
    return x;
}
int marker;
`)
	// Replace every `marker` identifier with the literal 7.
	ast.RewriteExpr(f, func(e ast.Expr) ast.Expr {
		if id, ok := e.(*ast.Ident); ok && id.Name == "marker" {
			return &ast.IntLit{Value: 7, Text: "7"}
		}
		return e
	})
	out := ast.Print(f)
	if strings.Contains(out, "x + marker") || !strings.Contains(out, "x + 7") {
		t.Fatalf("rewrite failed:\n%s", out)
	}
}

func TestLookupFuncPrefersDefinition(t *testing.T) {
	f := parse(t, `
int g(int x);
int g(int x) { return x + 1; }
`)
	fd := f.LookupFunc("g")
	if fd == nil || fd.Body == nil {
		t.Fatal("definition must be preferred over prototype")
	}
	if f.LookupFunc("missing") != nil {
		t.Fatal("missing function must be nil")
	}
}

func TestFuncs(t *testing.T) {
	f := parse(t, walkSrc)
	fns := f.Funcs()
	if len(fns) != 2 || fns[0].Name != "f" || fns[1].Name != "main" {
		t.Fatalf("funcs: %v", fns)
	}
}

func TestTypeExprClone(t *testing.T) {
	te := &ast.TypeExpr{Base: ast.Float, Ptrs: []ast.PtrQual{{Pure: true}}}
	c := te.Clone()
	c.Ptrs[0].Pure = false
	if !te.Ptrs[0].Pure {
		t.Fatal("clone must not share pointer-qualifier storage")
	}
}

func TestPrintTypes(t *testing.T) {
	cases := []struct {
		te   *ast.TypeExpr
		want string
	}{
		{&ast.TypeExpr{Base: ast.Int}, "int"},
		{&ast.TypeExpr{Base: ast.Float, Ptrs: []ast.PtrQual{{}}}, "float*"},
		{&ast.TypeExpr{Base: ast.Float, Pure: true, Ptrs: []ast.PtrQual{{Pure: true}}}, "pure float*"},
		{&ast.TypeExpr{Base: ast.Struct, StructName: "s", Ptrs: []ast.PtrQual{{}}}, "struct s*"},
		{&ast.TypeExpr{Base: ast.Int, Const: true}, "const int"},
	}
	for _, c := range cases {
		if got := ast.PrintType(c.te); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
}

func TestPrintStmtAndExpr(t *testing.T) {
	f := parse(t, walkSrc)
	fd := f.LookupFunc("f")
	out := ast.PrintStmt(fd.Body.List[1]) // the for loop
	if !strings.Contains(out, "for (int i = 0; i < n; i++)") {
		t.Fatalf("stmt print:\n%s", out)
	}
	ret := fd.Body.List[3].(*ast.ReturnStmt)
	if got := ast.PrintExpr(ret.X); got != "s" {
		t.Fatalf("expr print: %q", got)
	}
}

func TestPragmaRoundTrip(t *testing.T) {
	src := `void f(void) {
#pragma omp parallel for schedule(dynamic,1)
    for (int i = 0; i < 10; i++)
        ;
}
`
	f := parse(t, src)
	out := ast.Print(f)
	if !strings.Contains(out, "#pragma omp parallel for schedule(dynamic,1)") {
		t.Fatalf("pragma lost:\n%s", out)
	}
	f2 := parse(t, out)
	if ast.Print(f2) != out {
		t.Fatal("pragma print not stable")
	}
}
