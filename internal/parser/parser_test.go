package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"purec/internal/ast"
)

func parse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return f
}

// reparse checks the print/parse round trip: printing f and parsing the
// result must yield a tree that prints identically.
func reparse(t *testing.T, f *ast.File) {
	t.Helper()
	s1 := ast.Print(f)
	f2, err := Parse("rt.c", s1)
	if err != nil {
		t.Fatalf("round-trip parse error: %v\nprinted:\n%s", err, s1)
	}
	s2 := ast.Print(f2)
	if s1 != s2 {
		t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", s1, s2)
	}
}

func TestListing1Declaration(t *testing.T) {
	f := parse(t, "pure int* func(pure int* p1, int p2);\n")
	fd := f.LookupFunc("func")
	if fd == nil {
		t.Fatal("func not found")
	}
	if !fd.Pure {
		t.Error("function must be pure")
	}
	if len(fd.Params) != 2 {
		t.Fatalf("params: %d", len(fd.Params))
	}
	p1 := fd.Params[0].Type
	if len(p1.Ptrs) != 1 || !p1.Ptrs[0].Pure {
		t.Errorf("p1 must be a pure pointer: %+v", p1)
	}
	p2 := fd.Params[1].Type
	if p2.IsPointer() || p2.Pure {
		t.Errorf("p2 must be a plain int: %+v", p2)
	}
	if len(fd.Ret.Ptrs) != 1 {
		t.Errorf("return type must be int*: %+v", fd.Ret)
	}
	reparse(t, f)
}

func TestListing2Body(t *testing.T) {
	src := `
int* globalPtr;

void func1();
pure int* func2(pure int* p1, int p2);

pure int* func2(pure int* p1, int p2) {
    int a = p2;
    int b = a + 42;
    int* c = (int*)malloc(3 * sizeof(int));
    pure int* ptr = p1;
    pure int* extPtr2;
    extPtr2 = (pure int*)globalPtr;
    pure int* extPtr3;
    extPtr3 = (pure int*)func2(p1, p2);
    return c;
}
`
	f := parse(t, src)
	fd := f.LookupFunc("func2")
	if fd == nil || fd.Body == nil {
		t.Fatal("func2 definition not found")
	}
	if !fd.Pure {
		t.Error("func2 must be pure")
	}
	if got := len(fd.Body.List); got != 9 {
		t.Errorf("statements: got %d want 9", got)
	}
	reparse(t, f)
}

func TestPureCast(t *testing.T) {
	f := parse(t, `
int* ext;
pure void g(void) {
    pure int* p;
    p = (pure int*)ext;
}
`)
	fd := f.LookupFunc("g")
	es := fd.Body.List[1].(*ast.ExprStmt)
	as := es.X.(*ast.AssignExpr)
	cast, ok := as.RHS.(*ast.CastExpr)
	if !ok {
		t.Fatalf("rhs is %T, want cast", as.RHS)
	}
	if len(cast.Type.Ptrs) != 1 || !cast.Type.Ptrs[0].Pure {
		t.Errorf("cast type not a pure pointer: %+v", cast.Type)
	}
	reparse(t, f)
}

func TestMultiDeclaratorPointers(t *testing.T) {
	f := parse(t, "float **A, **Bt, **C;\n")
	g := f.Decls[0].(*ast.VarDeclGroup)
	if len(g.Decls) != 3 {
		t.Fatalf("decls: %d", len(g.Decls))
	}
	for _, d := range g.Decls {
		if len(d.Type.Ptrs) != 2 {
			t.Errorf("%s: %d pointer levels, want 2", d.Name, len(d.Type.Ptrs))
		}
	}
	reparse(t, f)
}

func TestMixedDeclarators(t *testing.T) {
	f := parse(t, "int x = 1, *p, arr[10];\n")
	g := f.Decls[0].(*ast.VarDeclGroup)
	if len(g.Decls) != 3 {
		t.Fatalf("decls: %d", len(g.Decls))
	}
	if g.Decls[0].Init == nil {
		t.Error("x must have initializer")
	}
	if len(g.Decls[1].Type.Ptrs) != 1 {
		t.Error("p must be pointer")
	}
	if len(g.Decls[2].ArrayLens) != 1 {
		t.Error("arr must have one dimension")
	}
	reparse(t, f)
}

func TestMatmulListing7(t *testing.T) {
	src := `
float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

int main(int argc, char** argv) {
    for (int i = 0; i < 4096; ++i)
        for (int j = 0; j < 4096; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[i], 4096);
    return 0;
}
`
	f := parse(t, src)
	if f.LookupFunc("mult") == nil || f.LookupFunc("dot") == nil || f.LookupFunc("main") == nil {
		t.Fatal("functions missing")
	}
	if !f.LookupFunc("dot").Pure {
		t.Error("dot must be pure")
	}
	reparse(t, f)
}

func TestControlFlow(t *testing.T) {
	src := `
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) s += i;
        else if (i % 3 == 0) s -= i;
        else continue;
    }
    while (s > 100) s /= 2;
    do { s++; } while (s < 10);
    switch (s) {
    case 0:
        s = 1;
        break;
    case 1:
    case 2:
        s = 3;
        break;
    default:
        s = -1;
    }
    return s;
}
`
	f := parse(t, src)
	reparse(t, f)
}

func TestExpressions(t *testing.T) {
	cases := []string{
		"a + b * c",
		"(a + b) * c",
		"a ? b : c ? d : e",
		"a = b = c",
		"x += y << 2",
		"-a + !b - ~c",
		"*p++ + (*q)--",
		"&arr[i]",
		"p->field.sub",
		"sizeof(int)",
		"sizeof(float*)",
		"sizeof x",
		"f(a, g(b), c[2])",
		"a && b || c && !d",
		"x % 3 == 0",
		"(float)i / (float)n",
		"(pure int*)p",
	}
	for _, src := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		s1 := ast.PrintExpr(e)
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Errorf("%q: reparse of %q: %v", src, s1, err)
			continue
		}
		if s2 := ast.PrintExpr(e2); s1 != s2 {
			t.Errorf("%q: round trip %q -> %q", src, s1, s2)
		}
	}
}

func TestPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.BinaryExpr)
	if _, ok := b.Y.(*ast.BinaryExpr); !ok {
		t.Fatalf("2*3 must bind tighter: %s", ast.PrintExpr(e))
	}
	e2, err := ParseExpr("a - b - c")
	if err != nil {
		t.Fatal(err)
	}
	b2 := e2.(*ast.BinaryExpr)
	if _, ok := b2.X.(*ast.BinaryExpr); !ok {
		t.Fatalf("subtraction must be left associative: %s", ast.PrintExpr(e2))
	}
}

func TestStructDeclAndUse(t *testing.T) {
	src := `
struct datatype {
    int storage;
    float vals[8];
};

void f(void) {
    struct datatype s;
    struct datatype* p;
    s.storage = 3;
    p->storage = 4;
    s.vals[2] = 1.5;
}
`
	f := parse(t, src)
	sd := f.Decls[0].(*ast.StructDecl)
	if sd.Name != "datatype" || len(sd.Fields) != 2 {
		t.Fatalf("struct: %+v", sd)
	}
	reparse(t, f)
}

func TestPragmasPreserved(t *testing.T) {
	src := `
void f(void) {
#pragma scop
    for (int i = 0; i < 10; i++)
        ;
#pragma endscop
}
`
	f := parse(t, src)
	fd := f.LookupFunc("f")
	if _, ok := fd.Body.List[0].(*ast.PragmaStmt); !ok {
		t.Fatalf("first stmt is %T", fd.Body.List[0])
	}
	out := ast.Print(f)
	if !strings.Contains(out, "#pragma scop") || !strings.Contains(out, "#pragma endscop") {
		t.Fatalf("pragmas lost:\n%s", out)
	}
	reparse(t, f)
}

func TestOmpPragmaStmt(t *testing.T) {
	src := `
void f(void) {
#pragma omp parallel for private(lbv, ubv, t2)
    for (int t1 = 0; t1 < 100; t1++)
        ;
}
`
	f := parse(t, src)
	reparse(t, f)
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"int f( {",
		"int x = ;",
		"for (;;)",           // missing statement and function context
		"int f(void) { if }", // bad if
		"int f(void) { return 1 }",
	}
	for _, src := range cases {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestHexOctalCharValues(t *testing.T) {
	f := parse(t, "int a = 0x10; int b = 010; int c = 'A';\n")
	vals := []int64{16, 8, 65}
	for i, d := range f.Decls {
		g := d.(*ast.VarDeclGroup)
		switch init := g.Decls[0].Init.(type) {
		case *ast.IntLit:
			if init.Value != vals[i] {
				t.Errorf("decl %d: got %d want %d", i, init.Value, vals[i])
			}
		case *ast.CharLit:
			if init.Value != vals[i] {
				t.Errorf("decl %d: got %d want %d", i, init.Value, vals[i])
			}
		default:
			t.Errorf("decl %d: unexpected init %T", i, init)
		}
	}
}

// Property: parse(print(parse(s))) == parse(s) for generated programs.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		src := genProgram(seed)
		f1, err := Parse("p.c", src)
		if err != nil {
			return false
		}
		s1 := ast.Print(f1)
		f2, err := Parse("p2.c", s1)
		if err != nil {
			return false
		}
		return ast.Print(f2) == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// genProgram produces a small random program from composable snippets.
func genProgram(seed uint32) string {
	bodies := []string{
		"int x = 0; x += 1; return x;",
		"float s = 0.0f; for (int i = 0; i < n; i++) s += (float)i; return (int)s;",
		"if (n > 0) return n; else return -n;",
		"int a[10]; a[0] = n; return a[0];",
		"int* p = (int*)malloc(4 * sizeof(int)); p[0] = n; int r = p[0]; free(p); return r;",
		"int s = 0; while (n > 0) { s += n; n--; } return s;",
		"return n ? n * 2 : 1;",
	}
	funcs := []string{
		"pure int h(int v) { return v + 1; }",
		"pure float m(float a, float b) { return a * b; }",
		"int* gp;",
		"float **M;",
	}
	s := seed
	pick := func(list []string) string {
		s = s*1664525 + 1013904223
		return list[int(s>>16)%len(list)]
	}
	var b strings.Builder
	b.WriteString(pick(funcs))
	b.WriteString("\n")
	b.WriteString(pick(funcs))
	b.WriteString("\nint f(int n) { ")
	b.WriteString(pick(bodies))
	b.WriteString(" }\nint g(int n) { ")
	b.WriteString(pick(bodies))
	b.WriteString(" }\n")
	return b.String()
}
