// Package parser builds the purec AST from token streams.
//
// It is a hand-written recursive-descent parser for the C subset used by
// the paper's tool chain (the paper used an AntLR 4.5 parser generated
// from the C11 grammar; a hand-written parser plays the same role here).
// The grammar extensions are exactly the paper's: pure as a function
// modifier, pure as a pointer qualifier in declarations and parameter
// lists, and pure inside cast type names (Listings 1-4).
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"purec/internal/ast"
	"purec/internal/lexer"
	"purec/internal/token"
)

// Error is a parse error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete translation unit. file names the source for
// positions; src must already be preprocessed except for #pragma lines.
func Parse(file, src string) (*ast.File, error) {
	lx := lexer.New(file, src)
	toks := lx.ScanAll()
	if err := lx.Errors().Err(); err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	f, err := p.parseFile()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ParseExpr parses a single expression (used by tests and the bench
// harness for parameter expressions).
func ParseExpr(src string) (ast.Expr, error) {
	lx := lexer.New("<expr>", src)
	toks := lx.ScanAll()
	if err := lx.Errors().Err(); err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: "<expr>"}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.tok().Kind != token.EOF {
		return nil, p.errorf("unexpected %s after expression", p.tok())
	}
	return e, nil
}

type parser struct {
	toks []token.Token
	pos  int
	file string

	// structTags collects struct names declared so far so that
	// "struct x" type references can be validated early.
	structTags map[string]bool
}

func (p *parser) tok() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.tok().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return token.Token{}, p.errorf("expected %q, found %s", k.String(), p.tok())
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.tok().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ----------------------------------------------------------------------------
// Declarations

func (p *parser) parseFile() (*ast.File, error) {
	f := &ast.File{Name: p.file}
	p.structTags = map[string]bool{}
	for !p.at(token.EOF) {
		d, err := p.topDecl()
		if err != nil {
			return nil, err
		}
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
	}
	return f, nil
}

func (p *parser) topDecl() (ast.Decl, error) {
	switch p.tok().Kind {
	case token.PRAGMA:
		t := p.next()
		return &ast.PragmaDecl{PragmaPos: t.Pos, Text: t.Lit}, nil
	case token.SEMI:
		p.next()
		return nil, nil
	case token.STRUCT:
		// Either a struct declaration "struct X { ... };" or a variable
		// of struct type "struct X v;".
		if p.peek().Kind == token.IDENT {
			if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == token.LBRACE {
				return p.structDecl()
			}
		}
	}
	return p.declOrFunc()
}

func (p *parser) structDecl() (ast.Decl, error) {
	spos := p.next().Pos // struct
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	sd := &ast.StructDecl{StructPos: spos, Name: name.Lit}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		ft, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		for {
			fname, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			fld := ast.Field{Type: ft.Clone(), Name: fname.Lit, NamePos: fname.Pos}
			for p.accept(token.LBRACK) {
				l, err := p.expr()
				if err != nil {
					return nil, err
				}
				fld.ArrayLens = append(fld.ArrayLens, l)
				if _, err := p.expect(token.RBRACK); err != nil {
					return nil, err
				}
			}
			sd.Fields = append(sd.Fields, fld)
			if !p.accept(token.COMMA) {
				break
			}
		}
		if _, err := p.expect(token.SEMI); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	p.structTags[sd.Name] = true
	return sd, nil
}

// declOrFunc parses a declaration that may be a function prototype,
// function definition, or (group of) variable declaration(s).
func (p *parser) declOrFunc() (ast.Decl, error) {
	pure, static, inline := p.declModifiers()
	base, err := p.baseTypeExpr()
	if err != nil {
		return nil, err
	}
	base.Pure = base.Pure || pure
	t := base.Clone()
	p.ptrStars(t)
	name, err := p.expect(token.IDENT)
	if err != nil {
		return nil, err
	}
	if p.at(token.LPAREN) {
		return p.funcRest(t, name, static, inline)
	}
	// Variable declaration(s); each declarator carries its own '*'s.
	normalizePure(t)
	g := &ast.VarDeclGroup{}
	d, err := p.varDeclRest(t, name)
	if err != nil {
		return nil, err
	}
	g.Decls = append(g.Decls, d)
	for p.accept(token.COMMA) {
		t2 := base.Clone()
		p.ptrStars(t2)
		normalizePure(t2)
		n2, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		d2, err := p.varDeclRest(t2, n2)
		if err != nil {
			return nil, err
		}
		g.Decls = append(g.Decls, d2)
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	return g, nil
}

// normalizePure propagates a pure qualifier written before the base type
// onto the outermost pointer level, so purity checks only consult Ptrs
// ("pure int* p" declares a pure pointer, paper Listing 1).
func normalizePure(t *ast.TypeExpr) {
	if t.Pure && len(t.Ptrs) > 0 {
		t.Ptrs[len(t.Ptrs)-1].Pure = true
	}
}

// declModifiers consumes leading pure/static/inline/extern modifiers.
func (p *parser) declModifiers() (pure, static, inline bool) {
	for {
		switch p.tok().Kind {
		case token.PURE:
			// pure directly before a base type: function purity or
			// pure-qualified declaration (disambiguated by typeExpr).
			if p.peek().Kind != token.IDENT { // pure int ..., pure float* ...
				pure = true
				p.next()
				continue
			}
			return
		case token.STATIC:
			static = true
			p.next()
		case token.INLINE:
			inline = true
			p.next()
		case token.EXTERN, token.REGISTER, token.VOLATILE:
			p.next()
		default:
			return
		}
	}
}

func (p *parser) varDeclRest(t *ast.TypeExpr, name token.Token) (*ast.VarDecl, error) {
	d := &ast.VarDecl{Type: t, Name: name.Lit, NamePos: name.Pos}
	for p.accept(token.LBRACK) {
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.ArrayLens = append(d.ArrayLens, l)
		if _, err := p.expect(token.RBRACK); err != nil {
			return nil, err
		}
	}
	if p.accept(token.ASSIGN) {
		init, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *parser) funcRest(ret *ast.TypeExpr, name token.Token, static, inline bool) (ast.Decl, error) {
	fd := &ast.FuncDecl{
		Pure:    ret.Pure,
		Static:  static,
		Inline:  inline,
		Ret:     ret,
		Name:    name.Lit,
		NamePos: name.Pos,
	}
	// The pure flag belongs to the function, not the return type's
	// pointee; keep Ret.Pure set as well so the printer reproduces the
	// original "pure int* f(...)" spelling via the FuncDecl.Pure flag only.
	fd.Ret = ret.Clone()
	fd.Ret.Pure = false
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	if p.at(token.VOID) && p.peek().Kind == token.RPAREN {
		p.next()
	}
	for !p.at(token.RPAREN) && !p.at(token.EOF) {
		pt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		var pn token.Token
		if p.at(token.IDENT) {
			pn = p.next()
		}
		prm := ast.Param{Type: pt, Name: pn.Lit, NamePos: pn.Pos}
		// Array parameter syntax T a[] / T a[N] decays to a pointer.
		for p.accept(token.LBRACK) {
			if !p.at(token.RBRACK) {
				if _, err := p.expr(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(token.RBRACK); err != nil {
				return nil, err
			}
			prm.Type.Ptrs = append(prm.Type.Ptrs, ast.PtrQual{})
		}
		fd.Params = append(fd.Params, prm)
		if !p.accept(token.COMMA) {
			break
		}
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if p.accept(token.SEMI) {
		return fd, nil // prototype
	}
	body, err := p.blockStmt()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// ----------------------------------------------------------------------------
// Types

// isTypeStart reports whether the current token can begin a type.
func (p *parser) isTypeStart() bool {
	switch p.tok().Kind {
	case token.VOID, token.CHAR, token.SHORT, token.INT, token.LONG,
		token.FLOAT, token.DOUBLE, token.UNSIGNED, token.SIGNED,
		token.STRUCT, token.CONST:
		return true
	case token.PURE:
		// pure begins a type when followed by a base type or const
		// ("pure int*", "pure const float*"); a bare "pure" identifier
		// use is not part of the subset.
		switch p.peek().Kind {
		case token.VOID, token.CHAR, token.SHORT, token.INT, token.LONG,
			token.FLOAT, token.DOUBLE, token.UNSIGNED, token.SIGNED,
			token.STRUCT, token.CONST:
			return true
		}
	}
	return false
}

// typeExpr parses [pure] [const] base {*} with per-level pure/const
// pointer qualifiers, e.g. "pure float*", "struct datatype*",
// "const int* const*".
func (p *parser) typeExpr() (*ast.TypeExpr, error) {
	t, err := p.baseTypeExpr()
	if err != nil {
		return nil, err
	}
	p.ptrStars(t)
	normalizePure(t)
	return t, nil
}

// baseTypeExpr parses the qualifier+base part of a type, without pointer
// declarator stars.
func (p *parser) baseTypeExpr() (*ast.TypeExpr, error) {
	t := &ast.TypeExpr{TypePos: p.tok().Pos}
	for {
		if p.accept(token.PURE) {
			t.Pure = true
			continue
		}
		if p.accept(token.CONST) {
			t.Const = true
			continue
		}
		break
	}
	switch p.tok().Kind {
	case token.VOID:
		p.next()
		t.Base = ast.Void
	case token.CHAR:
		p.next()
		t.Base = ast.Char
	case token.SHORT:
		p.next()
		t.Base = ast.Short
		p.accept(token.INT)
	case token.INT:
		p.next()
		t.Base = ast.Int
	case token.LONG:
		p.next()
		t.Base = ast.Long
		p.accept(token.LONG) // long long
		p.accept(token.INT)
	case token.FLOAT:
		p.next()
		t.Base = ast.Float
	case token.DOUBLE:
		p.next()
		t.Base = ast.Double
	case token.UNSIGNED:
		p.next()
		t.Base = ast.Unsigned
		p.accept(token.LONG)
		p.accept(token.INT)
		p.accept(token.CHAR)
	case token.SIGNED:
		p.next()
		t.Base = ast.Int
		p.accept(token.INT)
	case token.STRUCT:
		p.next()
		tag, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		t.Base = ast.Struct
		t.StructName = tag.Lit
	default:
		return nil, p.errorf("expected type, found %s", p.tok())
	}
	// trailing const after base: "int const"
	if p.accept(token.CONST) {
		t.Const = true
	}
	return t, nil
}

// ptrStars consumes the pointer declarator levels of a type, with optional
// pure/const qualifiers before or after each star ("pure*", "* const").
func (p *parser) ptrStars(t *ast.TypeExpr) {
	for {
		q := ast.PtrQual{}
		if p.at(token.MUL) {
			p.next()
			for {
				if p.accept(token.CONST) {
					q.Const = true
					continue
				}
				if p.accept(token.PURE) {
					q.Pure = true
					continue
				}
				break
			}
			t.Ptrs = append(t.Ptrs, q)
			continue
		}
		if p.at(token.PURE) && p.peek().Kind == token.MUL {
			p.next()
			p.next()
			q.Pure = true
			t.Ptrs = append(t.Ptrs, q)
			continue
		}
		if p.at(token.CONST) && p.peek().Kind == token.MUL {
			p.next()
			p.next()
			q.Const = true
			t.Ptrs = append(t.Ptrs, q)
			continue
		}
		return
	}
}

// ----------------------------------------------------------------------------
// Statements

func (p *parser) blockStmt() (*ast.BlockStmt, error) {
	lb, err := p.expect(token.LBRACE)
	if err != nil {
		return nil, err
	}
	b := &ast.BlockStmt{LBrace: lb.Pos}
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.List = append(b.List, s)
	}
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch p.tok().Kind {
	case token.PRAGMA:
		t := p.next()
		return &ast.PragmaStmt{PragmaPos: t.Pos, Text: t.Lit}, nil
	case token.SEMI:
		t := p.next()
		return &ast.EmptyStmt{SemiPos: t.Pos}, nil
	case token.LBRACE:
		return p.blockStmt()
	case token.IF:
		return p.ifStmt()
	case token.FOR:
		return p.forStmt()
	case token.WHILE:
		return p.whileStmt()
	case token.DO:
		return p.doStmt()
	case token.RETURN:
		t := p.next()
		rs := &ast.ReturnStmt{RetPos: t.Pos}
		if !p.at(token.SEMI) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(token.SEMI); err != nil {
			return nil, err
		}
		return rs, nil
	case token.BREAK:
		t := p.next()
		if _, err := p.expect(token.SEMI); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{BreakPos: t.Pos}, nil
	case token.CONTINUE:
		t := p.next()
		if _, err := p.expect(token.SEMI); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{ContPos: t.Pos}, nil
	case token.SWITCH:
		return p.switchStmt()
	}
	if p.isTypeStart() {
		ds, err := p.declStmt()
		if err != nil {
			return nil, err
		}
		return ds, nil
	}
	// Expression statement.
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	return &ast.ExprStmt{X: x}, nil
}

func (p *parser) declStmt() (*ast.DeclStmt, error) {
	base, err := p.baseTypeExpr()
	if err != nil {
		return nil, err
	}
	ds := &ast.DeclStmt{}
	for {
		t := base.Clone()
		p.ptrStars(t)
		normalizePure(t)
		name, err := p.expect(token.IDENT)
		if err != nil {
			return nil, err
		}
		d, err := p.varDeclRest(t, name)
		if err != nil {
			return nil, err
		}
		ds.Decls = append(ds.Decls, d)
		if !p.accept(token.COMMA) {
			break
		}
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	ipos := p.next().Pos
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	is := &ast.IfStmt{IfPos: ipos, Cond: cond, Then: then}
	if p.accept(token.ELSE) {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	fpos := p.next().Pos
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	fs := &ast.ForStmt{ForPos: fpos}
	switch {
	case p.at(token.SEMI):
		p.next()
	case p.isTypeStart():
		ds, err := p.declStmt() // consumes the semicolon
		if err != nil {
			return nil, err
		}
		fs.Init = ds
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Init = &ast.ExprStmt{X: x}
		if _, err := p.expect(token.SEMI); err != nil {
			return nil, err
		}
	}
	if !p.at(token.SEMI) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	if !p.at(token.RPAREN) {
		post, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	wpos := p.next().Pos
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{WhilePos: wpos, Cond: cond, Body: body}, nil
}

func (p *parser) doStmt() (ast.Stmt, error) {
	dpos := p.next().Pos
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.WHILE); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.SEMI); err != nil {
		return nil, err
	}
	return &ast.DoStmt{DoPos: dpos, Body: body, Cond: cond}, nil
}

func (p *parser) switchStmt() (ast.Stmt, error) {
	spos := p.next().Pos
	if _, err := p.expect(token.LPAREN); err != nil {
		return nil, err
	}
	tag, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.RPAREN); err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LBRACE); err != nil {
		return nil, err
	}
	ss := &ast.SwitchStmt{SwitchPos: spos, Tag: tag}
	for p.at(token.CASE) || p.at(token.DEFAULT) {
		cpos := p.tok().Pos
		var val ast.Expr
		if p.accept(token.CASE) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
		} else {
			p.next() // default
		}
		if _, err := p.expect(token.COLON); err != nil {
			return nil, err
		}
		cc := &ast.CaseClause{CasePos: cpos, Value: val}
		for !p.at(token.CASE) && !p.at(token.DEFAULT) && !p.at(token.RBRACE) && !p.at(token.EOF) {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			cc.Body = append(cc.Body, s)
		}
		ss.Cases = append(ss.Cases, cc)
	}
	if _, err := p.expect(token.RBRACE); err != nil {
		return nil, err
	}
	return ss, nil
}

// ----------------------------------------------------------------------------
// Expressions

func (p *parser) expr() (ast.Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (ast.Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if p.tok().Kind.IsAssignOp() {
		op := p.next().Kind
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignExpr{LHS: lhs, Op: op, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (ast.Expr, error) {
	cond, err := p.binExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(token.QUESTION) {
		return cond, nil
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.COLON); err != nil {
		return nil, err
	}
	els, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	return &ast.CondExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		op := p.tok().Kind
		prec := op.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{X: lhs, Op: op, Y: rhs}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	t := p.tok()
	switch t.Kind {
	case token.ADD:
		p.next()
		return p.unaryExpr() // unary plus is a no-op
	case token.SUB, token.NOT, token.TILDE, token.MUL, token.AND:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}, nil
	case token.INC, token.DEC:
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{OpPos: t.Pos, Op: t.Kind, X: x}, nil
	case token.SIZEOF:
		p.next()
		if p.at(token.LPAREN) && p.typeStartAfterLParen() {
			p.next() // (
			ty, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			return &ast.SizeofExpr{SizePos: t.Pos, Type: ty}, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &ast.SizeofExpr{SizePos: t.Pos, X: x}, nil
	case token.LPAREN:
		if p.typeStartAfterLParen() {
			// Cast expression, possibly a pure cast.
			lp := p.next() // (
			ty, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &ast.CastExpr{LPos: lp.Pos, Type: ty, X: x}, nil
		}
	}
	return p.postfixExpr()
}

// typeStartAfterLParen reports whether the token after the current '('
// starts a type name — used to disambiguate casts from parenthesized
// expressions.
func (p *parser) typeStartAfterLParen() bool {
	if !p.at(token.LPAREN) {
		return false
	}
	nx := p.peek().Kind
	switch nx {
	case token.VOID, token.CHAR, token.SHORT, token.INT, token.LONG,
		token.FLOAT, token.DOUBLE, token.UNSIGNED, token.SIGNED,
		token.STRUCT, token.CONST, token.PURE:
		return true
	}
	return false
}

func (p *parser) postfixExpr() (ast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok().Kind {
		case token.LBRACK:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(token.RBRACK); err != nil {
				return nil, err
			}
			x = &ast.IndexExpr{X: x, Index: idx}
		case token.LPAREN:
			id, ok := x.(*ast.Ident)
			if !ok {
				return nil, p.errorf("only direct calls of named functions are supported")
			}
			p.next()
			call := &ast.CallExpr{Fun: id}
			for !p.at(token.RPAREN) && !p.at(token.EOF) {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(token.COMMA) {
					break
				}
			}
			if _, err := p.expect(token.RPAREN); err != nil {
				return nil, err
			}
			x = call
		case token.DOT:
			p.next()
			name, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			x = &ast.MemberExpr{X: x, Name: name.Lit}
		case token.ARROW:
			p.next()
			name, err := p.expect(token.IDENT)
			if err != nil {
				return nil, err
			}
			x = &ast.MemberExpr{X: x, Name: name.Lit, Arrow: true}
		case token.INC, token.DEC:
			op := p.next()
			x = &ast.PostfixExpr{X: x, Op: op.Kind}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (ast.Expr, error) {
	t := p.tok()
	switch t.Kind {
	case token.IDENT:
		p.next()
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}, nil
	case token.INTLIT:
		p.next()
		v, err := parseIntLit(t.Lit)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: err.Error()}
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v, Text: t.Lit}, nil
	case token.FLOATLIT:
		p.next()
		text := strings.TrimRight(t.Lit, "fFlL")
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: err.Error()}
		}
		return &ast.FloatLit{LitPos: t.Pos, Value: v, Text: t.Lit}, nil
	case token.CHARLIT:
		p.next()
		v, err := parseCharLit(t.Lit)
		if err != nil {
			return nil, &Error{Pos: t.Pos, Msg: err.Error()}
		}
		return &ast.CharLit{LitPos: t.Pos, Value: v, Text: t.Lit}, nil
	case token.STRINGLIT:
		p.next()
		v, err := strconv.Unquote(t.Lit)
		if err != nil {
			v = strings.Trim(t.Lit, `"`)
		}
		return &ast.StringLit{LitPos: t.Pos, Value: v, Text: t.Lit}, nil
	case token.LPAREN:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RPAREN); err != nil {
			return nil, err
		}
		return &ast.ParenExpr{LPos: t.Pos, X: x}, nil
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

func parseIntLit(s string) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseInt(s[2:], 16, 64)
	}
	if len(s) > 1 && s[0] == '0' {
		return strconv.ParseInt(s[1:], 8, 64)
	}
	return strconv.ParseInt(s, 10, 64)
}

func parseCharLit(s string) (int64, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(s, "'"), "'")
	if body == "" {
		return 0, fmt.Errorf("empty character literal")
	}
	if body[0] != '\\' {
		return int64(body[0]), nil
	}
	if len(body) < 2 {
		return 0, fmt.Errorf("bad escape in character literal %q", s)
	}
	switch body[1] {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, fmt.Errorf("unsupported escape in character literal %q", s)
}
