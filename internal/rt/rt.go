// Package rt is the OpenMP-analog parallel runtime: a worker team that
// executes parallel-for regions with the two scheduling policies the
// paper's evaluation contrasts — schedule(static), where each thread gets
// one contiguous block (the LAMA configuration, Sect. 4.3.4), and
// schedule(dynamic,1), where threads pull iterations from a shared
// counter to absorb load imbalance (the satellite fix, Sect. 4.3.3).
//
// The team size plays the role of the core count on the paper's 64-core
// Opteron node: requesting more workers than GOMAXPROCS oversubscribes,
// reproducing the scaling plateaus the paper observes beyond the
// machine's effective parallelism.
package rt

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Schedule selects the loop scheduling policy.
type Schedule int

// Scheduling policies.
const (
	// Static splits the iteration space into one contiguous block per
	// worker (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic hands out chunks of ChunkSize iterations from a shared
	// counter (OpenMP schedule(dynamic,c)).
	Dynamic
	// Guided hands out exponentially shrinking chunks.
	Guided
)

var scheduleNames = [...]string{"static", "dynamic", "guided"}

// String returns the schedule name.
func (s Schedule) String() string { return scheduleNames[s] }

// ParseSchedule parses an OpenMP schedule clause body such as "static",
// "dynamic,1" or "guided,4". For static the chunk selects round-robin
// chunked distribution (0 means one contiguous block per worker); for
// dynamic it is the fixed chunk size; for guided the minimum chunk
// size.
func ParseSchedule(s string) (Schedule, int, error) {
	kind, chunkStr, hasChunk := strings.Cut(s, ",")
	kind = strings.TrimSpace(kind)
	chunk := 0
	if hasChunk {
		var err error
		chunk, err = strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || chunk <= 0 {
			return Static, 0, fmt.Errorf("bad %s chunk %q", kind, s)
		}
	}
	switch kind {
	case "", "static":
		return Static, chunk, nil
	case "dynamic":
		if !hasChunk {
			chunk = 1
		}
		return Dynamic, chunk, nil
	case "guided":
		if !hasChunk {
			chunk = 1
		}
		return Guided, chunk, nil
	}
	return Static, 0, fmt.Errorf("unknown schedule %q", s)
}

// Team is a group of workers executing parallel regions, the analog of
// an OpenMP thread team pinned with numactl in the paper's experiments.
//
// A team runs in one of two modes:
//
//   - real mode (NewTeam): goroutines execute chunks concurrently; wall
//     time reflects the host's actual parallelism;
//   - simulated mode (NewSimTeam): chunks run sequentially (bit-identical
//     results, no data races possible) while their measured durations are
//     assigned to virtual workers according to the schedule policy; the
//     region's simulated duration is the maximum virtual worker time plus
//     a fork/join overhead that grows with the worker count.
//
// Simulated mode is how the benchmark harness reproduces the paper's
// 64-core scaling curves on hosts with fewer cores: it is a substitution
// for the paper's hardware (documented in DESIGN.md). List scheduling of
// measured chunk times models exactly the effects the paper discusses —
// static block imbalance on the satellite workload versus dynamic,1
// stealing, and the end-of-matrix skew of the LAMA rows.
type Team struct {
	n   int
	sim bool

	mu      sync.Mutex
	simReal time.Duration // wall time spent inside simulated regions
	simVirt time.Duration // simulated parallel time of those regions
}

// SimForkJoinPerWorker is the per-worker fork/join overhead charged to
// every simulated parallel region (the OpenMP thread-team start/barrier
// analog).
const SimForkJoinPerWorker = 300 * time.Nanosecond

// SimDynamicDispatch is the per-chunk dispatch cost charged to dynamic
// and guided schedules in simulated mode (the shared-counter contention
// analog).
const SimDynamicDispatch = 60 * time.Nanosecond

// NewTeam creates a real team of n workers (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	return &Team{n: n}
}

// NewSimTeam creates a team of n simulated workers: execution is
// sequential and deterministic, timing is virtual.
func NewSimTeam(n int) *Team {
	t := NewTeam(n)
	t.sim = true
	return t
}

// Size returns the worker count.
func (t *Team) Size() int { return t.n }

// Simulated reports whether the team is in simulated-time mode.
func (t *Team) Simulated() bool { return t.sim }

// TakeSim returns and resets the accumulated (real, simulated) durations
// of parallel regions executed since the last call.
func (t *Team) TakeSim() (real, virt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	real, virt = t.simReal, t.simVirt
	t.simReal, t.simVirt = 0, 0
	return real, virt
}

// Body is the per-range work function of a parallel loop: it executes
// iterations [lo, hi] (inclusive) on worker w.
type Body func(w int, lo, hi int64)

// ParallelFor executes iterations lo..hi (inclusive) across the team
// using the given schedule. With a single worker it runs inline, giving
// the 1-core baseline an honest measurement without goroutine overhead.
func (t *Team) ParallelFor(lo, hi int64, sched Schedule, chunk int, body Body) {
	if hi < lo {
		return
	}
	if t.n == 1 {
		body(0, lo, hi)
		return
	}
	if t.sim {
		t.simFor(lo, hi, sched, int64(chunk), body)
		return
	}
	switch sched {
	case Dynamic:
		t.dynamicFor(lo, hi, int64(max(1, chunk)), body)
	case Guided:
		t.guidedFor(lo, hi, int64(max(1, chunk)), body)
	default:
		t.staticFor(lo, hi, int64(chunk), body)
	}
}

// simFor runs the region sequentially while accounting virtual worker
// times per the schedule policy.
func (t *Team) simFor(lo, hi int64, sched Schedule, chunk int64, body Body) {
	regionStart := time.Now()
	workers := make([]time.Duration, t.n)
	switch sched {
	case Dynamic, Guided:
		// Greedy list scheduling: each chunk goes to the least-loaded
		// virtual worker, which is what a work queue converges to.
		if chunk < 1 {
			chunk = 1
		}
		cur := lo
		for cur <= hi {
			c := chunk
			if sched == Guided {
				c = (hi - cur + 1) / int64(2*t.n)
				if c < chunk {
					c = chunk
				}
			}
			end := cur + c - 1
			if end > hi {
				end = hi
			}
			w := argmin(workers)
			chunkStart := time.Now()
			body(w, cur, end)
			workers[w] += time.Since(chunkStart) + SimDynamicDispatch
			cur = end + 1
		}
	default:
		if chunk >= 1 {
			// schedule(static,c): chunks assigned round-robin.
			n := int64(t.n)
			for k, start := int64(0), lo; start <= hi; k, start = k+1, start+chunk {
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				w := int(k % n)
				chunkStart := time.Now()
				body(w, start, end)
				workers[w] += time.Since(chunkStart)
			}
			break
		}
		// Default static: one contiguous block per worker.
		total := hi - lo + 1
		per := total / int64(t.n)
		rem := total % int64(t.n)
		start := lo
		for w := 0; w < t.n; w++ {
			cnt := per
			if int64(w) < rem {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			blockStart := time.Now()
			body(w, start, start+cnt-1)
			workers[w] += time.Since(blockStart)
			start += cnt
		}
	}
	var maxW time.Duration
	for _, d := range workers {
		if d > maxW {
			maxW = d
		}
	}
	virt := maxW + time.Duration(t.n)*SimForkJoinPerWorker
	t.mu.Lock()
	t.simReal += time.Since(regionStart)
	t.simVirt += virt
	t.mu.Unlock()
}

func argmin(ds []time.Duration) int {
	best := 0
	for i, d := range ds {
		if d < ds[best] {
			best = i
		}
	}
	return best
}

// staticFor assigns worker w the w-th contiguous block; with an
// explicit chunk (schedule(static,c)) chunks go round-robin instead.
func (t *Team) staticFor(lo, hi, chunk int64, body Body) {
	if chunk >= 1 {
		n := int64(t.n)
		var wg sync.WaitGroup
		for w := int64(0); w < n; w++ {
			first := lo + w*chunk
			if first > hi {
				continue
			}
			wg.Add(1)
			go func(w, first int64) {
				defer wg.Done()
				for start := first; start <= hi; start += n * chunk {
					end := start + chunk - 1
					if end > hi {
						end = hi
					}
					body(int(w), start, end)
				}
			}(w, first)
		}
		wg.Wait()
		return
	}
	total := hi - lo + 1
	per := total / int64(t.n)
	rem := total % int64(t.n)
	var wg sync.WaitGroup
	start := lo
	for w := 0; w < t.n; w++ {
		cnt := per
		if int64(w) < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		wLo, wHi := start, start+cnt-1
		start += cnt
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, wLo, wHi)
	}
	wg.Wait()
}

// dynamicFor hands out chunks from a shared atomic counter.
func (t *Team) dynamicFor(lo, hi, chunk int64, body Body) {
	var next atomic.Int64
	next.Store(lo)
	var wg sync.WaitGroup
	for w := 0; w < t.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				start := next.Add(chunk) - chunk
				if start > hi {
					return
				}
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				body(w, start, end)
			}
		}(w)
	}
	wg.Wait()
}

// guidedFor hands out exponentially shrinking chunks of at least
// minChunk iterations (the OpenMP schedule(guided,c) clause).
func (t *Team) guidedFor(lo, hi, minChunk int64, body Body) {
	var mu sync.Mutex
	cur := lo
	var wg sync.WaitGroup
	for w := 0; w < t.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				if cur > hi {
					mu.Unlock()
					return
				}
				remaining := hi - cur + 1
				chunk := remaining / int64(2*t.n)
				if chunk < minChunk {
					chunk = minChunk
				}
				start := cur
				cur += chunk
				mu.Unlock()
				end := start + chunk - 1
				if end > hi {
					end = hi
				}
				body(w, start, end)
			}
		}(w)
	}
	wg.Wait()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
