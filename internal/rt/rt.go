// Package rt is the OpenMP-analog parallel runtime: a worker team that
// executes parallel-for regions with the two scheduling policies the
// paper's evaluation contrasts — schedule(static), where each thread gets
// one contiguous block (the LAMA configuration, Sect. 4.3.4), and
// schedule(dynamic,1), where threads pull iterations from a shared
// counter to absorb load imbalance (the satellite fix, Sect. 4.3.3).
//
// The team size plays the role of the core count on the paper's 64-core
// Opteron node: requesting more workers than GOMAXPROCS oversubscribes,
// reproducing the scaling plateaus the paper observes beyond the
// machine's effective parallelism.
//
// All chunk bookkeeping runs in unsigned offsets relative to the loop's
// lower bound, so iteration ranges touching the int64 boundaries
// (hi near math.MaxInt64, lo near math.MinInt64) schedule correctly —
// signed chunk stepping like start+chunk-1 would wrap and either skip
// or re-execute iterations there.
package rt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Schedule selects the loop scheduling policy.
type Schedule int

// Scheduling policies.
const (
	// Static splits the iteration space into one contiguous block per
	// worker (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic hands out chunks of ChunkSize iterations from a shared
	// counter (OpenMP schedule(dynamic,c)).
	Dynamic
	// Guided hands out exponentially shrinking chunks.
	Guided
)

var scheduleNames = [...]string{"static", "dynamic", "guided"}

// String returns the schedule name.
func (s Schedule) String() string { return scheduleNames[s] }

// ParseSchedule parses an OpenMP schedule clause body such as "static",
// "dynamic,1" or "guided,4". For static the chunk selects round-robin
// chunked distribution (0 means one contiguous block per worker); for
// dynamic it is the fixed chunk size; for guided the minimum chunk
// size.
func ParseSchedule(s string) (Schedule, int, error) {
	kind, chunkStr, hasChunk := strings.Cut(s, ",")
	kind = strings.TrimSpace(kind)
	chunk := 0
	if hasChunk {
		var err error
		chunk, err = strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || chunk <= 0 {
			return Static, 0, fmt.Errorf("bad %s chunk %q", kind, s)
		}
	}
	switch kind {
	case "", "static":
		return Static, chunk, nil
	case "dynamic":
		if !hasChunk {
			chunk = 1
		}
		return Dynamic, chunk, nil
	case "guided":
		if !hasChunk {
			chunk = 1
		}
		return Guided, chunk, nil
	}
	return Static, 0, fmt.Errorf("unknown schedule %q", s)
}

// Combine selects the topology of a reduction's post-loop combine
// pass.
type Combine int

// Combine topologies.
const (
	// CombineLinear folds every worker's partial into the caller in
	// worker order 0..n-1 — the default. The combine pass is O(n) on
	// the region's critical path.
	CombineLinear Combine = iota
	// CombineTree merges the partials pairwise over the worker index
	// grid before the final fold into the caller: at stride s = 1, 2,
	// 4, ... accumulator w (w ≡ 0 mod 2s) absorbs accumulator w+s.
	// The bracketing is a pure function of which workers hold
	// accumulators — identical in real and simulated mode — so float
	// results are deterministic exactly where CombineLinear's are; they
	// only differ from CombineLinear's by the documented grouping.
	// Each level's merges are independent: real teams run them
	// concurrently and simulated teams charge the level's maximum merge
	// duration, making the combine pass O(log n) on the critical path.
	CombineTree
)

var combineNames = [...]string{"linear", "tree"}

// String returns the topology name.
func (c Combine) String() string { return combineNames[c] }

// ParseCombine parses a combine-topology flag value ("linear", "tree";
// empty selects linear).
func ParseCombine(s string) (Combine, error) {
	switch s {
	case "", "linear":
		return CombineLinear, nil
	case "tree":
		return CombineTree, nil
	}
	return CombineLinear, fmt.Errorf("unknown combine topology %q (want linear or tree)", s)
}

// ReductionClause is one parsed reduction(op:var) entry of an OpenMP
// parallel-for pragma. Op is the operator symbol exactly as written
// ("+", "*", "-", "max", ...); consumers decide which operators they
// support — purec parallelizes the associative-commutative subset
// {+, *, &, |, ^} and executes other clauses serially.
type ReductionClause struct {
	Op  string
	Var string
}

// ParseOmpReductions extracts every reduction clause of an omp pragma
// line, including clauses with operators purec does not parallelize;
// comma-separated variable lists expand to one entry per variable.
func ParseOmpReductions(pragma string) []ReductionClause {
	var out []ReductionClause
	rest := pragma
	for {
		i := strings.Index(rest, "reduction(")
		if i < 0 {
			return out
		}
		rest = rest[i+len("reduction("):]
		j := strings.IndexByte(rest, ')')
		if j < 0 {
			return out
		}
		body := rest[:j]
		rest = rest[j+1:]
		op, vars, ok := strings.Cut(body, ":")
		if !ok {
			continue
		}
		op = strings.TrimSpace(op)
		if op == "" {
			continue
		}
		for _, v := range strings.Split(vars, ",") {
			if v = strings.TrimSpace(v); v != "" {
				out = append(out, ReductionClause{Op: op, Var: v})
			}
		}
	}
}

// Team is a group of workers executing parallel regions, the analog of
// an OpenMP thread team pinned with numactl in the paper's experiments.
//
// A team runs in one of two modes:
//
//   - real mode (NewTeam): goroutines execute chunks concurrently; wall
//     time reflects the host's actual parallelism;
//   - simulated mode (NewSimTeam): chunks run sequentially (bit-identical
//     results, no data races possible) while their measured durations are
//     assigned to virtual workers according to the schedule policy; the
//     region's simulated duration is the maximum virtual worker time plus
//     a fork/join overhead that grows with the worker count.
//
// Simulated mode is how the benchmark harness reproduces the paper's
// 64-core scaling curves on hosts with fewer cores: it is a substitution
// for the paper's hardware (documented in DESIGN.md). List scheduling of
// measured chunk times models exactly the effects the paper discusses —
// static block imbalance on the satellite workload versus dynamic,1
// stealing, and the end-of-matrix skew of the LAMA rows.
type Team struct {
	n   int
	sim bool

	mu      sync.Mutex
	simReal time.Duration // wall time spent inside simulated regions
	simVirt time.Duration // simulated parallel time of those regions
}

// SimForkJoinPerWorker is the per-worker fork/join overhead charged to
// every simulated parallel region (the OpenMP thread-team start/barrier
// analog).
const SimForkJoinPerWorker = 300 * time.Nanosecond

// SimDynamicDispatch is the per-chunk dispatch cost charged to dynamic
// and guided schedules in simulated mode (the shared-counter contention
// analog).
const SimDynamicDispatch = 60 * time.Nanosecond

// NewTeam creates a real team of n workers (n >= 1).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	return &Team{n: n}
}

// NewSimTeam creates a team of n simulated workers: execution is
// sequential and deterministic, timing is virtual.
func NewSimTeam(n int) *Team {
	t := NewTeam(n)
	t.sim = true
	return t
}

// Size returns the worker count.
func (t *Team) Size() int { return t.n }

// Simulated reports whether the team is in simulated-time mode.
func (t *Team) Simulated() bool { return t.sim }

// TakeSim returns and resets the accumulated (real, simulated) durations
// of parallel regions executed since the last call.
func (t *Team) TakeSim() (real, virt time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	real, virt = t.simReal, t.simVirt
	t.simReal, t.simVirt = 0, 0
	return real, virt
}

// Body is the per-range work function of a parallel loop: it executes
// iterations [lo, hi] (inclusive) on worker w.
type Body func(w int, lo, hi int64)

// span is an iteration range in unsigned offsets relative to the loop
// lower bound. Every scheduler below works in this space: offsets of a
// non-empty [lo, hi] always fit uint64, and converting back with
// lo+int64(off) is exact under two's-complement wraparound.
type span struct {
	lo    int64
	total uint64 // iteration count; never 0
}

// seg converts an offset range back to inclusive int64 bounds.
func (s span) seg(start, end uint64) (int64, int64) {
	return s.lo + int64(start), s.lo + int64(end)
}

// chunkEnd returns the last offset of the chunk starting at start,
// capped to the iteration space; the end < start comparison catches
// uint64 wraparound of start+chunk-1 for huge chunk values.
func (s span) chunkEnd(start, chunk uint64) uint64 {
	end := start + (chunk - 1)
	if end >= s.total || end < start {
		end = s.total - 1
	}
	return end
}

// normRange validates [lo, hi] and converts it to offset space. The one
// range whose length exceeds uint64 — the full int64 space — has its
// first iteration peeled by the callers so total stays representable
// (such a loop is unrunnable anyway; this only guarantees we never
// mis-schedule it).
func normRange(lo, hi int64) span {
	return span{lo: lo, total: uint64(hi-lo) + 1}
}

// uchunk sanitizes a user chunk size for offset arithmetic.
func (s span) uchunk(chunk int) uint64 {
	if chunk < 1 {
		return 1
	}
	c := uint64(chunk)
	if c > s.total {
		c = s.total
	}
	return c
}

// ParallelFor executes iterations lo..hi (inclusive) across the team
// using the given schedule. Simulated teams are dispatched before the
// single-worker fast path: a 1-worker simulated team still needs its
// region accounted (simFor handles n=1), otherwise the simulated 1-core
// baseline would report zero region time. Real 1-worker teams run
// inline, giving the 1-core baseline an honest measurement without
// goroutine overhead.
func (t *Team) ParallelFor(lo, hi int64, sched Schedule, chunk int, body Body) {
	if hi < lo {
		return
	}
	if lo == math.MinInt64 && hi == math.MaxInt64 {
		// 2^64 iterations: peel one so the range length fits uint64.
		body(0, lo, lo)
		lo++
	}
	if t.sim {
		t.simFor(normRange(lo, hi), sched, chunk, body)
		return
	}
	if t.n == 1 {
		body(0, lo, hi)
		return
	}
	sp := normRange(lo, hi)
	switch sched {
	case Dynamic:
		t.dynamicFor(sp, sp.uchunk(chunk), body)
	case Guided:
		t.guidedFor(sp, sp.uchunk(chunk), body)
	default:
		t.staticFor(sp, chunk, body)
	}
}

// ReduceBody is the per-range work function of a parallel reduction
// loop: it folds iterations [lo, hi] (inclusive) into worker w's private
// accumulator acc and returns the updated accumulator.
type ReduceBody func(w int, lo, hi int64, acc any) any

// ParallelForReduce executes a reduction loop: every worker gets a
// private accumulator from init(w), the accumulator is threaded through
// all chunks that worker executes, and after the join combine(w, acc)
// runs once per worker in worker order 0..n-1 on the calling goroutine.
//
// Determinism contract for floating-point reductions (integer reductions
// are exact regardless of grouping):
//
//   - the combine order is always fixed (worker 0..n-1), so the result
//     depends only on which iterations landed in which accumulator;
//   - static schedules map iterations to workers by position, so real
//     static teams are reproducible run-to-run at a fixed team size;
//   - real dynamic/guided teams assign chunks by arrival — like OpenMP,
//     their float results may vary run-to-run;
//   - simulated teams assign accumulators round-robin in chunk order
//     (decoupled from the timing model's virtual workers), so every
//     schedule is reproducible in simulated mode at a fixed team size.
//
// In simulated mode the chunks execute sequentially under the schedule's
// virtual-worker accounting and the combine is charged on the region's
// critical path (it runs after the barrier, serially).
//
// An empty range (hi < lo) returns without calling init, body or
// combine, leaving the reduction target untouched.
func (t *Team) ParallelForReduce(lo, hi int64, sched Schedule, chunk int,
	init func(w int) any, body ReduceBody, combine func(w int, acc any)) {
	t.reduceLoop(lo, hi, sched, chunk, ReduceOptions{}, init, false, body, combine)
}

// ReduceOptions selects the combine topology of a reduction loop.
type ReduceOptions struct {
	// Combine is the topology of the post-loop combine pass
	// (CombineLinear by default).
	Combine Combine
	// Merge folds two private accumulators pairwise and returns the
	// merged accumulator (it may mutate and return dst). Required for
	// CombineTree — the tree's inner nodes merge partials into partials,
	// which the final combine callback (partial into caller) cannot
	// express — and ignored for CombineLinear.
	Merge func(dst, src any) any
}

// ParallelForReduceOpts is ParallelForReduce with an explicit combine
// topology. Under CombineTree the partials are merged pairwise with the
// fixed bracketing documented on the Combine constants, then the single
// surviving partial is folded into the caller via combine(0, acc); all
// other determinism clauses of ParallelForReduce hold unchanged, and
// integer results are identical across topologies.
func (t *Team) ParallelForReduceOpts(lo, hi int64, sched Schedule, chunk int, o ReduceOptions,
	init func(w int) any, body ReduceBody, combine func(w int, acc any)) {
	t.reduceLoop(lo, hi, sched, chunk, o, init, false, body, combine)
}

// ParallelForReduceArray executes an array-reduction loop
// (hist[a[i]]++ with a privatized array): like ParallelForReduce, but
// the per-worker private accumulator — a whole identity-initialized
// array copy — is allocated lazily, on the worker's first chunk, and
// the combine pass visits only workers that executed work. Allocating
// and folding an O(len) copy per worker is the dominant overhead of
// array reductions (the paper-scale tradeoff purebench Fig A1
// measures), so workers that never receive a chunk must not pay it.
//
// alloc(w) returns worker w's private copy (must be non-nil); body
// folds a chunk into it; after the join combine(w, acc) runs in worker
// order 0..n-1 on the calling goroutine, skipping workers whose alloc
// never ran. In simulated mode chunks execute sequentially with
// accumulators assigned round-robin in chunk order (deterministic at a
// fixed team size under every schedule, exactly like
// ParallelForReduce) and the combine pass — O(len · active workers),
// running serially after the barrier — is charged on the region's
// critical path.
//
// An empty range (hi < lo) returns without calling alloc, body or
// combine, leaving the reduction target untouched.
func (t *Team) ParallelForReduceArray(lo, hi int64, sched Schedule, chunk int,
	alloc func(w int) any, body ReduceBody, combine func(w int, acc any)) {
	t.reduceLoop(lo, hi, sched, chunk, ReduceOptions{}, alloc, true, body, combine)
}

// ParallelForReduceArrayOpts is ParallelForReduceArray with an explicit
// combine topology. Under CombineTree, workers that never allocated a
// private copy are skipped by moving their partner's accumulator up the
// tree unmerged, so the bracketing is a pure function of which workers
// worked — still deterministic wherever the accumulator assignment is.
func (t *Team) ParallelForReduceArrayOpts(lo, hi int64, sched Schedule, chunk int, o ReduceOptions,
	alloc func(w int) any, body ReduceBody, combine func(w int, acc any)) {
	t.reduceLoop(lo, hi, sched, chunk, o, alloc, true, body, combine)
}

// reduceLoop is the shared engine behind ParallelForReduce (eager
// accumulators: alloc runs for every worker up front, combine visits
// every worker) and ParallelForReduceArray (lazy: alloc runs on a
// worker's first chunk, combine skips workers that never worked).
// Both contracts share the deterministic sim-mode accumulation, the
// sim combine-on-critical-path accounting and the schedule dispatch,
// so the subtle parts exist exactly once.
func (t *Team) reduceLoop(lo, hi int64, sched Schedule, chunk int, o ReduceOptions,
	alloc func(w int) any, lazy bool, body ReduceBody, combine func(w int, acc any)) {
	if hi < lo {
		return
	}
	if o.Combine == CombineTree && o.Merge == nil {
		panic("rt: CombineTree requires ReduceOptions.Merge")
	}
	accs := make([]any, t.n)
	used := make([]bool, t.n)
	if !lazy {
		for w := range accs {
			accs[w] = alloc(w)
			used[w] = true
		}
	}
	get := func(w int) any {
		if !used[w] {
			accs[w] = alloc(w)
			used[w] = true
		}
		return accs[w]
	}
	if lo == math.MinInt64 && hi == math.MaxInt64 {
		accs[0] = body(0, lo, lo, get(0))
		lo++
	}
	wrapped := func(w int, clo, chi int64) { accs[w] = body(w, clo, chi, get(w)) }
	finish := func(w int) {
		if used[w] {
			combine(w, accs[w])
		}
	}
	switch {
	case t.sim:
		// Deterministic accumulation: chunks are produced in a fixed
		// sequential order; assign accumulators round-robin over that
		// order instead of by the timing model's least-loaded virtual
		// worker, which varies with measured durations.
		k := 0
		simWrapped := func(_ int, clo, chi int64) {
			a := k % t.n
			k++
			accs[a] = body(a, clo, chi, get(a))
		}
		sp := normRange(lo, hi)
		t.simFor(sp, sched, chunk, simWrapped)
		start := time.Now()
		var virt time.Duration
		if o.Combine == CombineTree && t.n > 1 {
			virt = t.treeCombineSim(accs, used, o.Merge, combine)
		} else {
			for w := range accs {
				finish(w)
			}
			virt = time.Since(start)
		}
		d := time.Since(start)
		t.mu.Lock()
		t.simReal += d
		t.simVirt += virt
		t.mu.Unlock()
		return
	case t.n == 1:
		wrapped(0, lo, hi)
	default:
		sp := normRange(lo, hi)
		switch sched {
		case Dynamic:
			t.dynamicFor(sp, sp.uchunk(chunk), wrapped)
		case Guided:
			t.guidedFor(sp, sp.uchunk(chunk), wrapped)
		default:
			t.staticFor(sp, chunk, wrapped)
		}
	}
	// Real mode: combine after the join. Each accs[w] was only touched
	// by worker w's goroutine, and wg.Wait in the scheduler ordered
	// those writes before this read.
	if o.Combine == CombineTree && t.n > 1 {
		t.treeCombineReal(accs, used, o.Merge, combine)
		return
	}
	// Linear: worker order 0..n-1 on the calling goroutine.
	for w := range accs {
		finish(w)
	}
}

// treeCombineSim runs the pairwise tree combine sequentially, timing
// each merge. The returned duration is the simulated critical path of
// the pass: per level, the merges are pairwise independent (a real team
// runs them concurrently), so the level charges only its longest merge;
// levels are sequentially dependent, so their charges sum, and the
// final root fold into the caller adds its full duration. The caller
// charges the wall time actually spent to simReal and the returned
// critical path to simVirt.
func (t *Team) treeCombineSim(accs []any, used []bool,
	merge func(dst, src any) any, combine func(w int, acc any)) time.Duration {
	var critical time.Duration
	for s := 1; s < t.n; s *= 2 {
		var level time.Duration
		for i := 0; i+s < t.n; i += 2 * s {
			if !used[i+s] {
				continue
			}
			if !used[i] {
				// Move, not merge: slot i never worked, so its partner's
				// partial ascends unchanged. Charged as free — a real
				// team moves a pointer.
				accs[i], used[i] = accs[i+s], true
				accs[i+s], used[i+s] = nil, false
				continue
			}
			mStart := time.Now()
			accs[i] = merge(accs[i], accs[i+s])
			if d := time.Since(mStart); d > level {
				level = d
			}
			accs[i+s], used[i+s] = nil, false
		}
		critical += level
	}
	rootStart := time.Now()
	if used[0] {
		combine(0, accs[0])
	}
	return critical + time.Since(rootStart)
}

// treeCombineReal runs the pairwise tree combine with the same fixed
// bracketing as treeCombineSim, executing each level's independent
// merges on concurrent goroutines. Worker-body panics inside a merge
// propagate to the caller exactly like loop-body panics (panicBox).
// The final surviving partial folds into the caller on the calling
// goroutine via combine(0, acc).
func (t *Team) treeCombineReal(accs []any, used []bool,
	merge func(dst, src any) any, combine func(w int, acc any)) {
	var box panicBox
	for s := 1; s < t.n; s *= 2 {
		var pairs [][2]int
		for i := 0; i+s < t.n; i += 2 * s {
			if !used[i+s] {
				continue
			}
			if !used[i] {
				accs[i], used[i] = accs[i+s], true
				accs[i+s], used[i+s] = nil, false
				continue
			}
			pairs = append(pairs, [2]int{i, i + s})
			used[i+s] = false
		}
		if len(pairs) == 1 {
			// A single merge gains nothing from a goroutine.
			i, j := pairs[0][0], pairs[0][1]
			box.protect(func() { accs[i] = merge(accs[i], accs[j]) })
		} else if len(pairs) > 1 {
			var wg sync.WaitGroup
			for _, pr := range pairs {
				wg.Add(1)
				go func(i, j int) {
					defer wg.Done()
					box.protect(func() { accs[i] = merge(accs[i], accs[j]) })
				}(pr[0], pr[1])
			}
			wg.Wait()
		}
		box.rethrow()
		for _, pr := range pairs {
			accs[pr[1]] = nil
		}
	}
	if used[0] {
		combine(0, accs[0])
	}
}

// simFor runs the region sequentially while accounting virtual worker
// times per the schedule policy.
func (t *Team) simFor(sp span, sched Schedule, chunk int, body Body) {
	regionStart := time.Now()
	workers := make([]time.Duration, t.n)
	uchunk := sp.uchunk(chunk)
	switch sched {
	case Dynamic, Guided:
		// Greedy list scheduling: each chunk goes to the least-loaded
		// virtual worker, which is what a work queue converges to.
		cur := uint64(0)
		for cur < sp.total {
			c := uchunk
			if sched == Guided {
				c = (sp.total - cur) / uint64(2*t.n)
				if c < uchunk {
					c = uchunk
				}
			}
			end := sp.chunkEnd(cur, c)
			w := argmin(workers)
			clo, chi := sp.seg(cur, end)
			chunkStart := time.Now()
			body(w, clo, chi)
			workers[w] += time.Since(chunkStart) + SimDynamicDispatch
			if end == sp.total-1 {
				break
			}
			cur = end + 1
		}
	default:
		if chunk >= 1 {
			// schedule(static,c): chunks assigned round-robin.
			n := uint64(t.n)
			for k, start := uint64(0), uint64(0); ; k++ {
				end := sp.chunkEnd(start, uchunk)
				w := int(k % n)
				clo, chi := sp.seg(start, end)
				chunkStart := time.Now()
				body(w, clo, chi)
				workers[w] += time.Since(chunkStart)
				if end == sp.total-1 {
					break
				}
				start = end + 1
			}
			break
		}
		// Default static: one contiguous block per worker.
		per := sp.total / uint64(t.n)
		rem := sp.total % uint64(t.n)
		start := uint64(0)
		for w := 0; w < t.n; w++ {
			cnt := per
			if uint64(w) < rem {
				cnt++
			}
			if cnt == 0 {
				continue
			}
			blo, bhi := sp.seg(start, start+cnt-1)
			blockStart := time.Now()
			body(w, blo, bhi)
			workers[w] += time.Since(blockStart)
			start += cnt
		}
	}
	var maxW time.Duration
	for _, d := range workers {
		if d > maxW {
			maxW = d
		}
	}
	virt := maxW + time.Duration(t.n)*SimForkJoinPerWorker
	t.mu.Lock()
	t.simReal += time.Since(regionStart)
	t.simVirt += virt
	t.mu.Unlock()
}

func argmin(ds []time.Duration) int {
	best := 0
	for i, d := range ds {
		if d < ds[best] {
			best = i
		}
	}
	return best
}

// panicBox carries the first panic raised inside a worker goroutine
// across the join, so a trap in a parallel region (an out-of-bounds
// store through a data-dependent subscript, say) surfaces on the
// calling goroutine as the same runtime error a sequential loop would
// raise — instead of crashing the process from a goroutine nobody can
// recover. A panicking worker stops executing its remaining chunks;
// the siblings drain theirs before the re-raise, so which side
// effects landed is schedule-dependent, exactly like OpenMP.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

// protect runs f, capturing its panic (first writer wins).
func (b *panicBox) protect(f func()) {
	defer func() {
		if r := recover(); r != nil {
			b.mu.Lock()
			if !b.set {
				b.val, b.set = r, true
			}
			b.mu.Unlock()
		}
	}()
	f()
}

// rethrow re-raises the captured panic on the calling goroutine.
func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// staticFor assigns worker w the w-th contiguous block; with an
// explicit chunk (schedule(static,c)) chunks go round-robin instead.
func (t *Team) staticFor(sp span, chunk int, body Body) {
	var box panicBox
	if chunk >= 1 {
		uchunk := sp.uchunk(chunk)
		// Worker w owns chunks w, w+n, w+2n, ... of the chunk grid.
		// nchunks = ceil(total/uchunk) never overflows, and neither does
		// ck*uchunk for ck < nchunks (it is at most total-1).
		nchunks := sp.total / uchunk
		if sp.total%uchunk != 0 {
			nchunks++
		}
		n := uint64(t.n)
		var wg sync.WaitGroup
		for w := uint64(0); w < n && w < nchunks; w++ {
			wg.Add(1)
			go func(w uint64) {
				defer wg.Done()
				box.protect(func() {
					for ck := w; ck < nchunks; {
						start := ck * uchunk
						end := sp.chunkEnd(start, uchunk)
						clo, chi := sp.seg(start, end)
						body(int(w), clo, chi)
						if ck > math.MaxUint64-n {
							break // next chunk index would wrap (unreachable in practice)
						}
						ck += n
					}
				})
			}(w)
		}
		wg.Wait()
		box.rethrow()
		return
	}
	per := sp.total / uint64(t.n)
	rem := sp.total % uint64(t.n)
	var wg sync.WaitGroup
	start := uint64(0)
	for w := 0; w < t.n; w++ {
		cnt := per
		if uint64(w) < rem {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		wLo, wHi := sp.seg(start, start+cnt-1)
		start += cnt
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			box.protect(func() { body(w, lo, hi) })
		}(w, wLo, wHi)
	}
	wg.Wait()
	box.rethrow()
}

// dynamicFor hands out chunks from a shared counter. Claims go through
// compare-and-swap so the counter never advances past the iteration
// count — a blind fetch-add could wrap the counter when the range ends
// near the top of the offset space and re-issue already-executed chunks.
func (t *Team) dynamicFor(sp span, uchunk uint64, body Body) {
	var box panicBox
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < t.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box.protect(func() {
				for {
					start := next.Load()
					if start >= sp.total {
						return
					}
					end := sp.chunkEnd(start, uchunk)
					if !next.CompareAndSwap(start, end+1) {
						continue
					}
					clo, chi := sp.seg(start, end)
					body(w, clo, chi)
				}
			})
		}(w)
	}
	wg.Wait()
	box.rethrow()
}

// guidedFor hands out exponentially shrinking chunks of at least
// minChunk iterations (the OpenMP schedule(guided,c) clause).
func (t *Team) guidedFor(sp span, minChunk uint64, body Body) {
	var box panicBox
	var mu sync.Mutex
	cur := uint64(0)
	var wg sync.WaitGroup
	for w := 0; w < t.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			box.protect(func() {
				for {
					mu.Lock()
					if cur >= sp.total {
						mu.Unlock()
						return
					}
					remaining := sp.total - cur
					chunk := remaining / uint64(2*t.n)
					if chunk < minChunk {
						chunk = minChunk
					}
					if chunk > remaining {
						chunk = remaining
					}
					start := cur
					cur += chunk
					mu.Unlock()
					clo, chi := sp.seg(start, start+chunk-1)
					body(w, clo, chi)
				}
			})
		}(w)
	}
	wg.Wait()
	box.rethrow()
}
