package rt

import (
	"sync/atomic"
	"testing"
)

// runArraySum executes a bin-count over [0, n) with the given team and
// schedule: iteration i lands in bin i%bins. Returns the combined
// histogram.
func runArraySum(team *Team, sched Schedule, chunk, n, bins int) []int64 {
	out := make([]int64, bins)
	team.ParallelForReduceArray(0, int64(n-1), sched, chunk,
		func(w int) any { return make([]int64, bins) },
		func(w int, lo, hi int64, acc any) any {
			h := acc.([]int64)
			for i := lo; i <= hi; i++ {
				h[i%int64(bins)]++
			}
			return h
		},
		func(w int, acc any) {
			for i, v := range acc.([]int64) {
				out[i] += v
			}
		})
	return out
}

func TestParallelForReduceArrayAllSchedules(t *testing.T) {
	const n, bins = 10007, 13
	want := make([]int64, bins)
	for i := 0; i < n; i++ {
		want[i%bins]++
	}
	for _, teamSize := range []int{1, 2, 3, 8, 64} {
		for _, team := range []*Team{NewTeam(teamSize), NewSimTeam(teamSize)} {
			for _, sc := range []struct {
				s     Schedule
				chunk int
			}{{Static, 0}, {Static, 7}, {Dynamic, 1}, {Dynamic, 13}, {Guided, 4}} {
				got := runArraySum(team, sc.s, sc.chunk, n, bins)
				for b := range want {
					if got[b] != want[b] {
						t.Fatalf("team=%d sim=%v sched=%v,%d: bin %d = %d, want %d",
							teamSize, team.Simulated(), sc.s, sc.chunk, b, got[b], want[b])
					}
				}
			}
		}
	}
}

func TestParallelForReduceArrayLazyAlloc(t *testing.T) {
	// A 2-iteration loop on a 64-worker team must not allocate 64
	// private copies: alloc runs only for workers that receive work.
	var allocs atomic.Int64
	team := NewTeam(64)
	total := int64(0)
	team.ParallelForReduceArray(0, 1, Static, 0,
		func(w int) any { allocs.Add(1); return new(int64) },
		func(w int, lo, hi int64, acc any) any {
			p := acc.(*int64)
			for i := lo; i <= hi; i++ {
				*p += i + 1
			}
			return p
		},
		func(w int, acc any) { total += *acc.(*int64) })
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if got := allocs.Load(); got > 2 {
		t.Errorf("alloc ran %d times for a 2-iteration loop; lazy allocation must bound it by the chunk count", got)
	}
}

func TestParallelForReduceArrayEmptyRange(t *testing.T) {
	called := false
	team := NewSimTeam(4)
	team.ParallelForReduceArray(5, 4, Static, 0,
		func(w int) any { called = true; return nil },
		func(w int, lo, hi int64, acc any) any { called = true; return acc },
		func(w int, acc any) { called = true })
	if called {
		t.Error("empty range must not call alloc, body or combine")
	}
}

func TestParallelForReduceArraySimAccountsCombine(t *testing.T) {
	// Simulated mode charges the post-barrier combine pass on the
	// region's critical path: the region must report nonzero time for
	// a workload whose combine is the dominant cost.
	team := NewSimTeam(4)
	team.TakeSim()
	runArraySum(team, Dynamic, 8, 4096, 1024)
	real, virt := team.TakeSim()
	if real <= 0 || virt <= 0 {
		t.Errorf("sim team reported zero region time (real=%v virt=%v)", real, virt)
	}
}

func TestWorkerPanicPropagatesToCaller(t *testing.T) {
	// A panic inside a worker goroutine (a trapped out-of-bounds store,
	// say) must re-raise on the calling goroutine after the join — on
	// every schedule — so Process.CallInt's recover can turn it into a
	// runtime error instead of the process crashing.
	for _, sc := range []struct {
		s     Schedule
		chunk int
	}{{Static, 0}, {Static, 3}, {Dynamic, 2}, {Guided, 1}} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("sched %v,%d: worker panic did not propagate", sc.s, sc.chunk)
				}
			}()
			team := NewTeam(4)
			team.ParallelFor(0, 999, sc.s, sc.chunk, func(w int, lo, hi int64) {
				if lo <= 500 && 500 <= hi {
					panic("trap in worker")
				}
			})
		}()
	}
}

func TestParallelForReduceArraySimDeterministic(t *testing.T) {
	// Round-robin accumulator assignment in simulated mode: identical
	// results run-to-run at a fixed team size even under dynamic
	// scheduling. (Exercised with order-sensitive float accumulation.)
	run := func() []float64 {
		team := NewSimTeam(5)
		out := make([]float64, 3)
		team.ParallelForReduceArray(0, 9999, Dynamic, 3,
			func(w int) any { return make([]float64, 3) },
			func(w int, lo, hi int64, acc any) any {
				h := acc.([]float64)
				for i := lo; i <= hi; i++ {
					h[i%3] += 1.0 / float64(i+1)
				}
				return h
			},
			func(w int, acc any) {
				for i, v := range acc.([]float64) {
					out[i] += v
				}
			})
		return out
	}
	first := run()
	for rep := 0; rep < 5; rep++ {
		got := run()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("rep %d bin %d: %x != %x", rep, i, got[i], first[i])
			}
		}
	}
}
