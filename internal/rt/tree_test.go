package rt

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestParseCombine(t *testing.T) {
	cases := []struct {
		in   string
		want Combine
		bad  bool
	}{
		{"", CombineLinear, false},
		{"linear", CombineLinear, false},
		{"tree", CombineTree, false},
		{"pairwise", 0, true},
		{"TREE", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCombine(c.in)
		if c.bad {
			if err == nil {
				t.Fatalf("ParseCombine(%q): want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Fatalf("ParseCombine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if CombineLinear.String() != "linear" || CombineTree.String() != "tree" {
		t.Fatalf("String(): %q/%q", CombineLinear, CombineTree)
	}
}

func reduceSumOpts(team *Team, lo, hi int64, sched Schedule, chunk int, o ReduceOptions) int64 {
	var out int64
	team.ParallelForReduceOpts(lo, hi, sched, chunk, o,
		func(int) any { return int64(0) },
		func(_ int, clo, chi int64, acc any) any {
			s := acc.(int64)
			for i := clo; i <= chi; i++ {
				s += i
			}
			return s
		},
		func(_ int, acc any) { out += acc.(int64) })
	return out
}

func mergeInt(dst, src any) any { return dst.(int64) + src.(int64) }

func TestTreeCombineEverySchedule(t *testing.T) {
	want := int64(500500) // sum 1..1000
	o := ReduceOptions{Combine: CombineTree, Merge: mergeInt}
	cases := []struct {
		sched Schedule
		chunk int
	}{
		{Static, 0}, {Static, 7}, {Dynamic, 1}, {Dynamic, 13}, {Guided, 1}, {Guided, 4},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 3, 8} {
			if got := reduceSumOpts(NewTeam(workers), 1, 1000, c.sched, c.chunk, o); got != want {
				t.Fatalf("real tree %v,%d @%d workers: sum=%d want %d", c.sched, c.chunk, workers, got, want)
			}
			if got := reduceSumOpts(NewSimTeam(workers), 1, 1000, c.sched, c.chunk, o); got != want {
				t.Fatalf("sim tree %v,%d @%d workers: sum=%d want %d", c.sched, c.chunk, workers, got, want)
			}
		}
	}
}

// TestTreeCombineBracketing pins the documented merge order: at stride
// s = 1, 2, 4, ... accumulator w (w ≡ 0 mod 2s) absorbs accumulator
// w+s. Accumulators build a parenthesized string, so the final value IS
// the bracketing — and it must come out identical on real and
// simulated teams.
func TestTreeCombineBracketing(t *testing.T) {
	// 6 workers, static, one span each: used set {0..5}.
	// stride 1: (0+1) (2+3) (4+5); stride 2: 0 absorbs 2, 4 keeps
	// (no partner); stride 4: 0 absorbs 4.
	want := "(((w0+w1)+(w2+w3))+(w4+w5))"
	for _, sim := range []bool{false, true} {
		team := NewTeam(6)
		if sim {
			team = NewSimTeam(6)
		}
		var out string
		team.ParallelForReduceOpts(0, 5, Static, 0,
			ReduceOptions{Combine: CombineTree, Merge: func(dst, src any) any {
				return "(" + dst.(string) + "+" + src.(string) + ")"
			}},
			func(w int) any { return fmt.Sprintf("w%d", w) },
			func(_ int, _, _ int64, acc any) any { return acc },
			func(w int, acc any) {
				if w != 0 {
					t.Fatalf("root fold reported worker %d, want 0", w)
				}
				out = acc.(string)
			})
		if out != want {
			t.Fatalf("sim=%v: bracketing %s, want %s", sim, out, want)
		}
	}
}

// TestTreeCombineHoleBracketing covers the gap case: lazily allocated
// array-reduction accumulators leave holes at workers that never
// received a chunk, and the survivor below a hole moves up unmerged.
// 3 workers on a 2-iteration dynamic loop in sim mode assign chunks
// round-robin to workers 0 and 1, so worker 2 never allocates: stride
// 1 merges (0+1), stride 2 finds no partner.
func TestTreeCombineHoleBracketing(t *testing.T) {
	var out string
	NewSimTeam(3).ParallelForReduceArrayOpts(0, 1, Dynamic, 1,
		ReduceOptions{Combine: CombineTree, Merge: func(dst, src any) any {
			return "(" + dst.(string) + "+" + src.(string) + ")"
		}},
		func(w int) any { return fmt.Sprintf("w%d", w) },
		func(_ int, _, _ int64, acc any) any { return acc },
		func(_ int, acc any) { out = acc.(string) })
	if out != "(w0+w1)" {
		t.Fatalf("bracketing with hole: %s, want (w0+w1)", out)
	}
}

func TestTreeCombineRequiresMerge(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "Merge") {
			t.Fatalf("want Merge-required panic, got %v", r)
		}
	}()
	reduceSumOpts(NewTeam(4), 0, 9, Static, 0, ReduceOptions{Combine: CombineTree})
}

// TestTreeVsLinearIntsIdentical is the integer half of the topology
// contract: ints are bit-identical across topologies, schedules and
// real/sim teams.
func TestTreeVsLinearIntsIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 8, 12} {
		for _, c := range []struct {
			sched Schedule
			chunk int
		}{{Static, 0}, {Dynamic, 3}, {Guided, 2}} {
			want := int64(12497500) // sum 0..4999
			for _, sim := range []bool{false, true} {
				mk := func() *Team {
					if sim {
						return NewSimTeam(workers)
					}
					return NewTeam(workers)
				}
				lin := reduceSumOpts(mk(), 0, 4999, c.sched, c.chunk, ReduceOptions{})
				tree := reduceSumOpts(mk(), 0, 4999, c.sched, c.chunk,
					ReduceOptions{Combine: CombineTree, Merge: mergeInt})
				if lin != want || tree != want {
					t.Fatalf("@%d workers %v,%d sim=%v: linear=%d tree=%d want %d",
						workers, c.sched, c.chunk, sim, lin, tree, want)
				}
			}
		}
	}
}

// TestTreeVsLinearFloatsMayDiffer is the float half: each topology is
// bit-deterministic within itself, but tree and linear bracket float
// folds differently and may legally disagree. The values are chosen so
// rounding forces a disagreement — proof the test would catch a
// topology that silently ignored the knob.
func TestTreeVsLinearFloatsMayDiffer(t *testing.T) {
	// Worker w's accumulator is vals[w] (4 workers, static, one
	// iteration each).
	vals := []float64{1e16, 1, -1e16, 1}
	run := func(team *Team, o ReduceOptions) float64 {
		var out float64
		team.ParallelForReduceOpts(0, 3, Static, 1, o,
			func(int) any { return float64(0) },
			func(_ int, clo, chi int64, acc any) any {
				s := acc.(float64)
				for i := clo; i <= chi; i++ {
					s += vals[i]
				}
				return s
			},
			func(_ int, acc any) { out += acc.(float64) })
		return out
	}
	mergeF := func(dst, src any) any { return dst.(float64) + src.(float64) }
	for _, sim := range []bool{false, true} {
		mk := func() *Team {
			if sim {
				return NewSimTeam(4)
			}
			return NewTeam(4)
		}
		// linear: ((1e16 + 1) + -1e16) + 1 = 1 (the +1 is absorbed
		// into 1e16's rounding); tree: (1e16+1) + (-1e16+1) = 0.
		lin := run(mk(), ReduceOptions{})
		tree := run(mk(), ReduceOptions{Combine: CombineTree, Merge: mergeF})
		if lin != 1 || tree != 0 {
			t.Fatalf("sim=%v: linear=%g tree=%g, want 1 and 0", sim, lin, tree)
		}
		// Within a topology the result is reproducible run to run.
		for rep := 0; rep < 5; rep++ {
			if g := run(mk(), ReduceOptions{}); g != lin {
				t.Fatalf("sim=%v linear rep %d: %g != %g", sim, rep, g, lin)
			}
			if g := run(mk(), ReduceOptions{Combine: CombineTree, Merge: mergeF}); g != tree {
				t.Fatalf("sim=%v tree rep %d: %g != %g", sim, rep, g, tree)
			}
		}
	}
}

// TestTreeCombineSimChargesCriticalPath checks the sim cost model: a
// level's concurrent merges charge their maximum, so 8 workers' 7
// merges charge 3 levels, not 7 merges, on the virtual clock.
func TestTreeCombineSimChargesCriticalPath(t *testing.T) {
	const d = 5 * time.Millisecond
	team := NewSimTeam(8)
	team.ParallelForReduceOpts(0, 7, Static, 1,
		ReduceOptions{Combine: CombineTree, Merge: func(dst, src any) any {
			time.Sleep(d)
			return dst.(int) + src.(int)
		}},
		func(int) any { return 1 },
		func(_ int, _, _ int64, acc any) any { return acc },
		func(int, any) {})
	_, virt := team.TakeSim()
	// 3 levels of ~5ms each on the critical path; the linear chain
	// would be 7 merges (~35ms). Generous slack on both sides.
	if virt < 14*time.Millisecond {
		t.Fatalf("tree combine undercharged: virt=%v, want >= 3 levels (~15ms)", virt)
	}
	if virt > 30*time.Millisecond {
		t.Fatalf("tree combine charged like a linear chain: virt=%v, want ~3 levels (~15ms)", virt)
	}
}

func TestTreeCombineMergePanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "boom") {
			t.Fatalf("want merge panic to propagate, got %v", r)
		}
	}()
	NewTeam(8).ParallelForReduceOpts(0, 7, Static, 1,
		ReduceOptions{Combine: CombineTree, Merge: func(dst, src any) any { panic("boom") }},
		func(int) any { return 0 },
		func(_ int, _, _ int64, acc any) any { return acc },
		func(int, any) {})
}
