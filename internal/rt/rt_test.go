package rt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// coverage checks that a schedule visits every iteration exactly once.
func coverage(t *testing.T, team *Team, sched Schedule, chunk int, lo, hi int64) {
	t.Helper()
	n := hi - lo + 1
	var mu sync.Mutex
	seen := make(map[int64]int)
	team.ParallelFor(lo, hi, sched, chunk, func(_ int, clo, chi int64) {
		mu.Lock()
		for i := clo; i <= chi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	if int64(len(seen)) != n {
		t.Fatalf("visited %d iterations, want %d", len(seen), n)
	}
	for i := lo; i <= hi; i++ {
		if seen[i] != 1 {
			t.Fatalf("iteration %d visited %d times", i, seen[i])
		}
	}
}

func TestStaticCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		coverage(t, NewTeam(workers), Static, 0, 0, 99)
		coverage(t, NewTeam(workers), Static, 0, 5, 5)
		coverage(t, NewTeam(workers), Static, 0, -3, 12)
	}
}

func TestDynamicCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1, 3, 100} {
			coverage(t, NewTeam(workers), Dynamic, chunk, 0, 57)
		}
	}
}

func TestGuidedCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		coverage(t, NewTeam(workers), Guided, 0, 0, 200)
	}
}

func TestSimCoverage(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		coverage(t, NewSimTeam(8), sched, 1, 0, 63)
	}
}

func TestEmptyRange(t *testing.T) {
	ran := false
	NewTeam(4).ParallelFor(5, 4, Static, 0, func(_ int, _, _ int64) { ran = true })
	if ran {
		t.Fatal("empty range must not execute")
	}
}

func TestMoreWorkersThanIterations(t *testing.T) {
	coverage(t, NewTeam(64), Static, 0, 0, 9)
	coverage(t, NewTeam(64), Dynamic, 1, 0, 9)
}

func TestRealParallelSum(t *testing.T) {
	var sum atomic.Int64
	NewTeam(4).ParallelFor(1, 1000, Static, 0, func(_ int, lo, hi int64) {
		var local int64
		for i := lo; i <= hi; i++ {
			local += i
		}
		sum.Add(local)
	})
	if got := sum.Load(); got != 500500 {
		t.Fatalf("sum: %d", got)
	}
}

func TestSimAccounting(t *testing.T) {
	team := NewSimTeam(4)
	team.ParallelFor(0, 7, Static, 0, func(_ int, lo, hi int64) {
		time.Sleep(time.Millisecond)
	})
	real, virt := team.TakeSim()
	if real <= 0 || virt <= 0 {
		t.Fatalf("accounting: real=%v virt=%v", real, virt)
	}
	// 4 sequential blocks of ~1ms should simulate to ~1ms + overhead,
	// well below the ~4ms real time.
	if virt >= real {
		t.Fatalf("simulated time %v must be below real %v", virt, real)
	}
	// second take must be zero
	r2, v2 := team.TakeSim()
	if r2 != 0 || v2 != 0 {
		t.Fatal("TakeSim must reset")
	}
}

func TestSimDynamicBalancesSkewedLoad(t *testing.T) {
	// Heavy tail: last iterations cost ~20x. Static blocks pin the tail
	// to one worker; dynamic spreads it. The kernel is sized so each
	// tail iteration takes tens of microseconds — large against timer
	// noise — and the comparison retries to ride out scheduler hiccups
	// on a loaded test box.
	work := func(i int64) {
		n := 5000
		if i >= 90 {
			n = 100000
		}
		x := 0.0
		for k := 0; k < n; k++ {
			x += float64(k)
		}
		_ = x
	}
	run := func(sched Schedule, chunk int) time.Duration {
		team := NewSimTeam(8)
		team.ParallelFor(0, 99, sched, chunk, func(_ int, lo, hi int64) {
			for i := lo; i <= hi; i++ {
				work(i)
			}
		})
		_, virt := team.TakeSim()
		return virt
	}
	// chunk 0: default static, one contiguous block per worker (the
	// imbalanced configuration the paper's satellite fix targets).
	var static, dynamic time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		static = run(Static, 0)
		dynamic = run(Dynamic, 1)
		if dynamic < static {
			return
		}
	}
	t.Fatalf("dynamic (%v) must beat static (%v) on a skewed tail", dynamic, static)
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		err   bool
	}{
		{"", Static, 0, false},
		{"static", Static, 0, false},
		{"static,8", Static, 8, false},
		{"dynamic", Dynamic, 1, false},
		{"dynamic,1", Dynamic, 1, false},
		{"dynamic,8", Dynamic, 8, false},
		{"dynamic, 4", Dynamic, 4, false},
		{"guided", Guided, 1, false},
		{"guided,4", Guided, 4, false},
		{"guided, 16", Guided, 16, false},
		{"bogus", Static, 0, true},
		{"dynamic,x", Dynamic, 1, true},
		{"dynamic,0", Dynamic, 1, true},
		{"guided,x", Guided, 1, true},
		{"guided,-2", Guided, 1, true},
	}
	for _, c := range cases {
		s, ch, err := ParseSchedule(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err=%v", c.in, err)
			continue
		}
		if err == nil && (s != c.sched || ch != c.chunk) {
			t.Errorf("%q: got %v,%d want %v,%d", c.in, s, ch, c.sched, c.chunk)
		}
	}
}

// TestParseScheduleEdgeCases covers the clause-body corners the
// pragma path can produce: whitespace in every position, explicit
// chunks with each kind, zero/negative/garbage chunks, and unknown
// schedule kinds.
func TestParseScheduleEdgeCases(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		err   bool
	}{
		// whitespace variants
		{" static ", Static, 0, false},
		{"\tstatic\t", Static, 0, false},
		{" static , 8 ", Static, 8, false},
		{"dynamic, 4", Dynamic, 4, false},
		{" dynamic ,4", Dynamic, 4, false},
		{"guided,\t16", Guided, 16, false},
		// defaults with and without chunks
		{"", Static, 0, false},
		{"static,1", Static, 1, false},
		{"dynamic", Dynamic, 1, false},
		{"guided", Guided, 1, false},
		// zero and negative chunks are rejected for every kind
		{"static,0", Static, 0, true},
		{"static,-1", Static, 0, true},
		{"dynamic,0", Dynamic, 0, true},
		{"dynamic,-4", Dynamic, 0, true},
		{"guided,0", Guided, 0, true},
		{"guided,-2", Guided, 0, true},
		// non-numeric chunks
		{"static,x", Static, 0, true},
		{"dynamic,1.5", Dynamic, 0, true},
		{"guided,", Guided, 0, true},
		{"dynamic, ", Dynamic, 0, true},
		// unknown kinds (OpenMP auto/runtime are not modeled; the
		// parser is case-sensitive like the C pragma grammar here)
		{"auto", Static, 0, true},
		{"runtime", Static, 0, true},
		{"STATIC", Static, 0, true},
		{"Dynamic,2", Static, 0, true},
		{"static,4,8", Static, 0, true},
	}
	for _, c := range cases {
		s, ch, err := ParseSchedule(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err = %v, want error %v", c.in, err, c.err)
			continue
		}
		if err == nil && (s != c.sched || ch != c.chunk) {
			t.Errorf("%q: got %v,%d want %v,%d", c.in, s, ch, c.sched, c.chunk)
		}
	}
}

// TestAllSchedulesCoverageMatrix is the exactly-once contract for every
// schedule policy in both execution modes: for each (schedule, chunk,
// workers, range) cell, real-mode ParallelFor (staticFor / dynamicFor /
// guidedFor) and simulated-mode ParallelFor (simFor) must execute every
// iteration in [lo,hi] exactly once.
func TestAllSchedulesCoverageMatrix(t *testing.T) {
	ranges := []struct{ lo, hi int64 }{
		{0, 0},    // single iteration
		{0, 99},   // plain range
		{-7, 23},  // negative lower bound
		{50, 307}, // offset range larger than any chunk
	}
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 7, 64} {
			for _, workers := range []int{1, 3, 8} {
				for _, r := range ranges {
					coverage(t, NewTeam(workers), sched, chunk, r.lo, r.hi)
					coverage(t, NewSimTeam(workers), sched, chunk, r.lo, r.hi)
				}
			}
		}
	}
}

// Property: static partitioning is a partition for arbitrary ranges and
// team sizes.
func TestStaticPartitionProperty(t *testing.T) {
	f := func(loRaw int16, span uint8, workers uint8) bool {
		lo := int64(loRaw)
		hi := lo + int64(span)
		w := int(workers%32) + 1
		var mu sync.Mutex
		count := map[int64]int{}
		NewTeam(w).ParallelFor(lo, hi, Static, 0, func(_ int, clo, chi int64) {
			mu.Lock()
			for i := clo; i <= chi; i++ {
				count[i]++
			}
			mu.Unlock()
		})
		if int64(len(count)) != int64(span)+1 {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGuidedChunkCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 4, 50} {
			coverage(t, NewTeam(workers), Guided, chunk, 0, 200)
			coverage(t, NewSimTeam(workers), Guided, chunk, 0, 200)
		}
	}
}

func TestStaticChunkCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, chunk := range []int{1, 4, 50, 300} {
			coverage(t, NewTeam(workers), Static, chunk, 0, 200)
			coverage(t, NewSimTeam(workers), Static, chunk, 0, 200)
			coverage(t, NewTeam(workers), Static, chunk, -3, 12)
		}
	}
}

// ----------------------------------------------------------------------------
// PR 3: boundary-value scheduling, 1-worker sim accounting, reductions

// boundaryCoverage verifies exactly-once coverage without iterating
// int64 values (i++ itself would wrap at MaxInt64): chunks are recorded
// as unsigned offsets from lo.
func boundaryCoverage(t *testing.T, team *Team, sched Schedule, chunk int, lo, hi int64) {
	t.Helper()
	total := uint64(hi-lo) + 1
	var mu sync.Mutex
	type rng struct{ s, e uint64 }
	var got []rng
	done := make(chan struct{})
	go func() {
		defer close(done)
		team.ParallelFor(lo, hi, sched, chunk, func(_ int, clo, chi int64) {
			mu.Lock()
			got = append(got, rng{uint64(clo - lo), uint64(chi - lo)})
			mu.Unlock()
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("%v chunk=%d [%d,%d]: schedule did not terminate (overflowed stepping?)", sched, chunk, lo, hi)
	}
	var covered uint64
	seen := make(map[uint64]bool)
	for _, r := range got {
		if r.e < r.s || r.e >= total {
			t.Fatalf("%v chunk=%d [%d,%d]: chunk offsets [%d,%d] outside space of %d", sched, chunk, lo, hi, r.s, r.e, total)
		}
		for o := r.s; ; o++ {
			if seen[o] {
				t.Fatalf("%v chunk=%d [%d,%d]: offset %d executed twice", sched, chunk, lo, hi, o)
			}
			seen[o] = true
			covered++
			if o == r.e {
				break
			}
		}
	}
	if covered != total {
		t.Fatalf("%v chunk=%d [%d,%d]: covered %d of %d iterations", sched, chunk, lo, hi, covered, total)
	}
}

func TestBoundaryRanges(t *testing.T) {
	// Ranges hugging the int64 boundaries: signed chunk stepping like
	// start+chunk-1 or next.Add(chunk) wraps here and either skips or
	// re-executes iterations.
	ranges := []struct{ lo, hi int64 }{
		{math.MaxInt64 - 10, math.MaxInt64},
		{math.MaxInt64 - 1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64},
		{math.MinInt64, math.MinInt64 + 7},
		{math.MinInt64, math.MinInt64},
		{-5, 6},
	}
	for _, r := range ranges {
		for _, sched := range []Schedule{Static, Dynamic, Guided} {
			// chunk 0 exercises default static (block partition) and the
			// dynamic/guided minimum-chunk clamp; 1<<30 exercises chunks
			// far larger than the range.
			for _, chunk := range []int{0, 1, 3, 1 << 30} {
				for _, workers := range []int{1, 3, 8} {
					boundaryCoverage(t, NewTeam(workers), sched, chunk, r.lo, r.hi)
					boundaryCoverage(t, NewSimTeam(workers), sched, chunk, r.lo, r.hi)
				}
			}
		}
	}
}

func TestFullInt64RangeStartsCorrectly(t *testing.T) {
	// The full int64 space has 2^64 iterations — unrunnable, but the
	// first chunks handed out must still be valid (no wrapped bounds).
	team := NewTeam(2)
	var mu sync.Mutex
	var bad []string
	n := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		team.ParallelFor(math.MinInt64, math.MaxInt64, Dynamic, 1<<20, func(_ int, clo, chi int64) {
			mu.Lock()
			if chi < clo {
				bad = append(bad, fmt.Sprintf("[%d,%d]", clo, chi))
			}
			n++
			stop := n > 64
			mu.Unlock()
			if stop {
				// Enough evidence; park this worker until the test ends.
				select {}
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bad) > 0 {
		t.Fatalf("wrapped chunk bounds: %v", bad)
	}
	if n == 0 {
		t.Fatal("no chunks executed")
	}
}

func TestSimOneWorkerAccountsRegions(t *testing.T) {
	// Regression: ParallelFor used to check n==1 before sim, so a
	// 1-worker simulated team ran inline and the simulated 1-core
	// baseline reported zero region time.
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		team := NewSimTeam(1)
		team.ParallelFor(0, 3, sched, 1, func(_ int, lo, hi int64) {
			time.Sleep(200 * time.Microsecond)
		})
		real, virt := team.TakeSim()
		if real <= 0 || virt <= 0 {
			t.Fatalf("%v: 1-worker sim team must account regions, got real=%v virt=%v", sched, real, virt)
		}
	}
}

// reduceSum runs an integer sum reduction through ParallelForReduce.
func reduceSum(team *Team, lo, hi int64, sched Schedule, chunk int) int64 {
	var out int64
	team.ParallelForReduce(lo, hi, sched, chunk,
		func(int) any { return int64(0) },
		func(_ int, clo, chi int64, acc any) any {
			s := acc.(int64)
			for i := clo; i <= chi; i++ {
				s += i
			}
			return s
		},
		func(_ int, acc any) { out += acc.(int64) })
	return out
}

func TestParallelForReduceEverySchedule(t *testing.T) {
	want := int64(500500) // sum 1..1000
	cases := []struct {
		sched Schedule
		chunk int
	}{
		{Static, 0}, {Static, 7}, {Dynamic, 1}, {Dynamic, 13}, {Guided, 1}, {Guided, 4},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 3, 8} {
			if got := reduceSum(NewTeam(workers), 1, 1000, c.sched, c.chunk); got != want {
				t.Fatalf("real %v,%d @%d workers: sum=%d want %d", c.sched, c.chunk, workers, got, want)
			}
			if got := reduceSum(NewSimTeam(workers), 1, 1000, c.sched, c.chunk); got != want {
				t.Fatalf("sim %v,%d @%d workers: sum=%d want %d", c.sched, c.chunk, workers, got, want)
			}
		}
	}
}

func TestParallelForReduceEmptyRange(t *testing.T) {
	called := false
	NewTeam(4).ParallelForReduce(5, 4, Static, 0,
		func(int) any { called = true; return nil },
		func(_ int, _, _ int64, acc any) any { called = true; return acc },
		func(int, any) { called = true })
	if called {
		t.Fatal("empty range must not call init, body or combine")
	}
}

func TestParallelForReduceCombineOrder(t *testing.T) {
	// The combine must run in worker order 0..n-1 — that fixed order is
	// the float determinism contract.
	for _, team := range []*Team{NewTeam(6), NewSimTeam(6)} {
		var order []int
		team.ParallelForReduce(0, 99, Dynamic, 1,
			func(int) any { return 0 },
			func(_ int, _, _ int64, acc any) any { return acc },
			func(w int, _ any) { order = append(order, w) })
		if len(order) != 6 {
			t.Fatalf("combine ran %d times, want 6", len(order))
		}
		for w, got := range order {
			if got != w {
				t.Fatalf("combine order %v, want 0..5", order)
			}
		}
	}
}

func TestParallelForReduceFloatDeterministic(t *testing.T) {
	// The float determinism contract: real static teams and simulated
	// teams under every schedule are reproducible run-to-run at a fixed
	// team size (real dynamic/guided assign chunks by arrival, like
	// OpenMP, and promise only integer exactness).
	run := func(team *Team, sched Schedule, chunk int) float64 {
		var out float64
		team.ParallelForReduce(0, 9999, sched, chunk,
			func(int) any { return float64(0) },
			func(_ int, clo, chi int64, acc any) any {
				s := acc.(float64)
				for i := clo; i <= chi; i++ {
					s += 1.0 / float64(i+1)
				}
				return s
			},
			func(_ int, acc any) { out += acc.(float64) })
		return out
	}
	for _, workers := range []int{2, 5, 8} {
		for _, c := range []struct {
			sched Schedule
			chunk int
			sim   bool
		}{
			{Static, 0, false}, {Static, 7, false},
			{Static, 0, true}, {Static, 7, true}, {Dynamic, 3, true}, {Guided, 2, true},
		} {
			mk := func() *Team {
				if c.sim {
					return NewSimTeam(workers)
				}
				return NewTeam(workers)
			}
			first := run(mk(), c.sched, c.chunk)
			for rep := 0; rep < 10; rep++ {
				if got := run(mk(), c.sched, c.chunk); got != first {
					t.Fatalf("@%d workers %v,%d sim=%v: run %d gave %x, first run %x",
						workers, c.sched, c.chunk, c.sim, rep, got, first)
				}
			}
		}
	}
}

func TestParallelForReduceSimChargesCombine(t *testing.T) {
	team := NewSimTeam(4)
	team.ParallelForReduce(0, 3, Static, 0,
		func(int) any { return 0 },
		func(_ int, _, _ int64, acc any) any { return acc },
		func(int, any) { time.Sleep(200 * time.Microsecond) })
	_, virt := team.TakeSim()
	// 4 combines of ~200µs run serially on the critical path.
	if virt < 500*time.Microsecond {
		t.Fatalf("combine not charged on critical path: virt=%v", virt)
	}
}

func TestParallelForReduceBoundaryRange(t *testing.T) {
	lo, hi := int64(math.MaxInt64-6), int64(math.MaxInt64)
	var count int64
	NewTeam(3).ParallelForReduce(lo, hi, Dynamic, 2,
		func(int) any { return int64(0) },
		func(_ int, clo, chi int64, acc any) any {
			return acc.(int64) + int64(uint64(chi-clo)+1)
		},
		func(_ int, acc any) { count += acc.(int64) })
	if count != 7 {
		t.Fatalf("boundary reduce covered %d iterations, want 7", count)
	}
}
