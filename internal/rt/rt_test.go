package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// coverage checks that a schedule visits every iteration exactly once.
func coverage(t *testing.T, team *Team, sched Schedule, chunk int, lo, hi int64) {
	t.Helper()
	n := hi - lo + 1
	var mu sync.Mutex
	seen := make(map[int64]int)
	team.ParallelFor(lo, hi, sched, chunk, func(_ int, clo, chi int64) {
		mu.Lock()
		for i := clo; i <= chi; i++ {
			seen[i]++
		}
		mu.Unlock()
	})
	if int64(len(seen)) != n {
		t.Fatalf("visited %d iterations, want %d", len(seen), n)
	}
	for i := lo; i <= hi; i++ {
		if seen[i] != 1 {
			t.Fatalf("iteration %d visited %d times", i, seen[i])
		}
	}
}

func TestStaticCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		coverage(t, NewTeam(workers), Static, 0, 0, 99)
		coverage(t, NewTeam(workers), Static, 0, 5, 5)
		coverage(t, NewTeam(workers), Static, 0, -3, 12)
	}
}

func TestDynamicCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{1, 3, 100} {
			coverage(t, NewTeam(workers), Dynamic, chunk, 0, 57)
		}
	}
}

func TestGuidedCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		coverage(t, NewTeam(workers), Guided, 0, 0, 200)
	}
}

func TestSimCoverage(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		coverage(t, NewSimTeam(8), sched, 1, 0, 63)
	}
}

func TestEmptyRange(t *testing.T) {
	ran := false
	NewTeam(4).ParallelFor(5, 4, Static, 0, func(_ int, _, _ int64) { ran = true })
	if ran {
		t.Fatal("empty range must not execute")
	}
}

func TestMoreWorkersThanIterations(t *testing.T) {
	coverage(t, NewTeam(64), Static, 0, 0, 9)
	coverage(t, NewTeam(64), Dynamic, 1, 0, 9)
}

func TestRealParallelSum(t *testing.T) {
	var sum atomic.Int64
	NewTeam(4).ParallelFor(1, 1000, Static, 0, func(_ int, lo, hi int64) {
		var local int64
		for i := lo; i <= hi; i++ {
			local += i
		}
		sum.Add(local)
	})
	if got := sum.Load(); got != 500500 {
		t.Fatalf("sum: %d", got)
	}
}

func TestSimAccounting(t *testing.T) {
	team := NewSimTeam(4)
	team.ParallelFor(0, 7, Static, 0, func(_ int, lo, hi int64) {
		time.Sleep(time.Millisecond)
	})
	real, virt := team.TakeSim()
	if real <= 0 || virt <= 0 {
		t.Fatalf("accounting: real=%v virt=%v", real, virt)
	}
	// 4 sequential blocks of ~1ms should simulate to ~1ms + overhead,
	// well below the ~4ms real time.
	if virt >= real {
		t.Fatalf("simulated time %v must be below real %v", virt, real)
	}
	// second take must be zero
	r2, v2 := team.TakeSim()
	if r2 != 0 || v2 != 0 {
		t.Fatal("TakeSim must reset")
	}
}

func TestSimDynamicBalancesSkewedLoad(t *testing.T) {
	// Heavy tail: last iterations cost ~20x. Static blocks pin the tail
	// to one worker; dynamic spreads it. The kernel is sized so each
	// tail iteration takes tens of microseconds — large against timer
	// noise — and the comparison retries to ride out scheduler hiccups
	// on a loaded test box.
	work := func(i int64) {
		n := 5000
		if i >= 90 {
			n = 100000
		}
		x := 0.0
		for k := 0; k < n; k++ {
			x += float64(k)
		}
		_ = x
	}
	run := func(sched Schedule, chunk int) time.Duration {
		team := NewSimTeam(8)
		team.ParallelFor(0, 99, sched, chunk, func(_ int, lo, hi int64) {
			for i := lo; i <= hi; i++ {
				work(i)
			}
		})
		_, virt := team.TakeSim()
		return virt
	}
	// chunk 0: default static, one contiguous block per worker (the
	// imbalanced configuration the paper's satellite fix targets).
	var static, dynamic time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		static = run(Static, 0)
		dynamic = run(Dynamic, 1)
		if dynamic < static {
			return
		}
	}
	t.Fatalf("dynamic (%v) must beat static (%v) on a skewed tail", dynamic, static)
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		err   bool
	}{
		{"", Static, 0, false},
		{"static", Static, 0, false},
		{"static,8", Static, 8, false},
		{"dynamic", Dynamic, 1, false},
		{"dynamic,1", Dynamic, 1, false},
		{"dynamic,8", Dynamic, 8, false},
		{"dynamic, 4", Dynamic, 4, false},
		{"guided", Guided, 1, false},
		{"guided,4", Guided, 4, false},
		{"guided, 16", Guided, 16, false},
		{"bogus", Static, 0, true},
		{"dynamic,x", Dynamic, 1, true},
		{"dynamic,0", Dynamic, 1, true},
		{"guided,x", Guided, 1, true},
		{"guided,-2", Guided, 1, true},
	}
	for _, c := range cases {
		s, ch, err := ParseSchedule(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err=%v", c.in, err)
			continue
		}
		if err == nil && (s != c.sched || ch != c.chunk) {
			t.Errorf("%q: got %v,%d want %v,%d", c.in, s, ch, c.sched, c.chunk)
		}
	}
}

// TestParseScheduleEdgeCases covers the clause-body corners the
// pragma path can produce: whitespace in every position, explicit
// chunks with each kind, zero/negative/garbage chunks, and unknown
// schedule kinds.
func TestParseScheduleEdgeCases(t *testing.T) {
	cases := []struct {
		in    string
		sched Schedule
		chunk int
		err   bool
	}{
		// whitespace variants
		{" static ", Static, 0, false},
		{"\tstatic\t", Static, 0, false},
		{" static , 8 ", Static, 8, false},
		{"dynamic, 4", Dynamic, 4, false},
		{" dynamic ,4", Dynamic, 4, false},
		{"guided,\t16", Guided, 16, false},
		// defaults with and without chunks
		{"", Static, 0, false},
		{"static,1", Static, 1, false},
		{"dynamic", Dynamic, 1, false},
		{"guided", Guided, 1, false},
		// zero and negative chunks are rejected for every kind
		{"static,0", Static, 0, true},
		{"static,-1", Static, 0, true},
		{"dynamic,0", Dynamic, 0, true},
		{"dynamic,-4", Dynamic, 0, true},
		{"guided,0", Guided, 0, true},
		{"guided,-2", Guided, 0, true},
		// non-numeric chunks
		{"static,x", Static, 0, true},
		{"dynamic,1.5", Dynamic, 0, true},
		{"guided,", Guided, 0, true},
		{"dynamic, ", Dynamic, 0, true},
		// unknown kinds (OpenMP auto/runtime are not modeled; the
		// parser is case-sensitive like the C pragma grammar here)
		{"auto", Static, 0, true},
		{"runtime", Static, 0, true},
		{"STATIC", Static, 0, true},
		{"Dynamic,2", Static, 0, true},
		{"static,4,8", Static, 0, true},
	}
	for _, c := range cases {
		s, ch, err := ParseSchedule(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err = %v, want error %v", c.in, err, c.err)
			continue
		}
		if err == nil && (s != c.sched || ch != c.chunk) {
			t.Errorf("%q: got %v,%d want %v,%d", c.in, s, ch, c.sched, c.chunk)
		}
	}
}

// TestAllSchedulesCoverageMatrix is the exactly-once contract for every
// schedule policy in both execution modes: for each (schedule, chunk,
// workers, range) cell, real-mode ParallelFor (staticFor / dynamicFor /
// guidedFor) and simulated-mode ParallelFor (simFor) must execute every
// iteration in [lo,hi] exactly once.
func TestAllSchedulesCoverageMatrix(t *testing.T) {
	ranges := []struct{ lo, hi int64 }{
		{0, 0},    // single iteration
		{0, 99},   // plain range
		{-7, 23},  // negative lower bound
		{50, 307}, // offset range larger than any chunk
	}
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 7, 64} {
			for _, workers := range []int{1, 3, 8} {
				for _, r := range ranges {
					coverage(t, NewTeam(workers), sched, chunk, r.lo, r.hi)
					coverage(t, NewSimTeam(workers), sched, chunk, r.lo, r.hi)
				}
			}
		}
	}
}

// Property: static partitioning is a partition for arbitrary ranges and
// team sizes.
func TestStaticPartitionProperty(t *testing.T) {
	f := func(loRaw int16, span uint8, workers uint8) bool {
		lo := int64(loRaw)
		hi := lo + int64(span)
		w := int(workers%32) + 1
		var mu sync.Mutex
		count := map[int64]int{}
		NewTeam(w).ParallelFor(lo, hi, Static, 0, func(_ int, clo, chi int64) {
			mu.Lock()
			for i := clo; i <= chi; i++ {
				count[i]++
			}
			mu.Unlock()
		})
		if int64(len(count)) != int64(span)+1 {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGuidedChunkCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, chunk := range []int{1, 4, 50} {
			coverage(t, NewTeam(workers), Guided, chunk, 0, 200)
			coverage(t, NewSimTeam(workers), Guided, chunk, 0, 200)
		}
	}
}

func TestStaticChunkCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		for _, chunk := range []int{1, 4, 50, 300} {
			coverage(t, NewTeam(workers), Static, chunk, 0, 200)
			coverage(t, NewSimTeam(workers), Static, chunk, 0, 200)
			coverage(t, NewTeam(workers), Static, chunk, -3, 12)
		}
	}
}
