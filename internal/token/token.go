// Package token defines the lexical tokens of the mini-C dialect accepted
// by purec, including the pure keyword introduced by the paper
// "Pure Functions in C: A Small Keyword for Automatic Parallelization".
//
// The token set covers the C11 subset needed by the paper's evaluation
// programs (declarations, expressions, control flow, preprocessor pragmas)
// plus the pure extension usable as a function modifier, a pointer
// qualifier, and inside cast expressions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of lexical token kinds.
const (
	// Special tokens.
	ILLEGAL Kind = iota
	EOF
	COMMENT // // line or /* block */ comment (retained for round-tripping)
	PRAGMA  // #pragma line retained verbatim (scop, endscop, omp ...)

	literalBeg
	IDENT     // main
	INTLIT    // 12345, 0x1F, 077
	FLOATLIT  // 3.14, 1e-9, 2.f
	CHARLIT   // 'a'
	STRINGLIT // "abc"
	literalEnd

	operatorBeg
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND   // &
	OR    // |
	XOR   // ^
	SHL   // <<
	SHR   // >>
	NOT   // !
	TILDE // ~

	ASSIGN    // =
	ADDASSIGN // +=
	SUBASSIGN // -=
	MULASSIGN // *=
	QUOASSIGN // /=
	REMASSIGN // %=
	ANDASSIGN // &=
	ORASSIGN  // |=
	XORASSIGN // ^=
	SHLASSIGN // <<=
	SHRASSIGN // >>=

	INC // ++
	DEC // --

	EQL // ==
	NEQ // !=
	LSS // <
	LEQ // <=
	GTR // >
	GEQ // >=

	LAND // &&
	LOR  // ||

	LPAREN   // (
	RPAREN   // )
	LBRACK   // [
	RBRACK   // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	DOT      // .
	ARROW    // ->
	ELLIPSIS // ...
	operatorEnd

	keywordBeg
	BREAK
	CASE
	CHAR
	CONST
	CONTINUE
	DEFAULT
	DO
	DOUBLE
	ELSE
	ENUM
	EXTERN
	FLOAT
	FOR
	GOTO
	IF
	INLINE
	INT
	LONG
	PURE // the paper's extension
	REGISTER
	RETURN
	SHORT
	SIGNED
	SIZEOF
	STATIC
	STRUCT
	SWITCH
	TYPEDEF
	UNION
	UNSIGNED
	VOID
	VOLATILE
	WHILE
	keywordEnd
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL",
	EOF:     "EOF",
	COMMENT: "COMMENT",
	PRAGMA:  "PRAGMA",

	IDENT:     "IDENT",
	INTLIT:    "INTLIT",
	FLOATLIT:  "FLOATLIT",
	CHARLIT:   "CHARLIT",
	STRINGLIT: "STRINGLIT",

	ADD:   "+",
	SUB:   "-",
	MUL:   "*",
	QUO:   "/",
	REM:   "%",
	AND:   "&",
	OR:    "|",
	XOR:   "^",
	SHL:   "<<",
	SHR:   ">>",
	NOT:   "!",
	TILDE: "~",

	ASSIGN:    "=",
	ADDASSIGN: "+=",
	SUBASSIGN: "-=",
	MULASSIGN: "*=",
	QUOASSIGN: "/=",
	REMASSIGN: "%=",
	ANDASSIGN: "&=",
	ORASSIGN:  "|=",
	XORASSIGN: "^=",
	SHLASSIGN: "<<=",
	SHRASSIGN: ">>=",

	INC: "++",
	DEC: "--",

	EQL: "==",
	NEQ: "!=",
	LSS: "<",
	LEQ: "<=",
	GTR: ">",
	GEQ: ">=",

	LAND: "&&",
	LOR:  "||",

	LPAREN:   "(",
	RPAREN:   ")",
	LBRACK:   "[",
	RBRACK:   "]",
	LBRACE:   "{",
	RBRACE:   "}",
	COMMA:    ",",
	SEMI:     ";",
	COLON:    ":",
	QUESTION: "?",
	DOT:      ".",
	ARROW:    "->",
	ELLIPSIS: "...",

	BREAK:    "break",
	CASE:     "case",
	CHAR:     "char",
	CONST:    "const",
	CONTINUE: "continue",
	DEFAULT:  "default",
	DO:       "do",
	DOUBLE:   "double",
	ELSE:     "else",
	ENUM:     "enum",
	EXTERN:   "extern",
	FLOAT:    "float",
	FOR:      "for",
	GOTO:     "goto",
	IF:       "if",
	INLINE:   "inline",
	INT:      "int",
	LONG:     "long",
	PURE:     "pure",
	REGISTER: "register",
	RETURN:   "return",
	SHORT:    "short",
	SIGNED:   "signed",
	SIZEOF:   "sizeof",
	STATIC:   "static",
	STRUCT:   "struct",
	SWITCH:   "switch",
	TYPEDEF:  "typedef",
	UNION:    "union",
	UNSIGNED: "unsigned",
	VOID:     "void",
	VOLATILE: "volatile",
	WHILE:    "while",
}

// String returns the textual spelling of operator and keyword kinds and the
// symbolic name of the other kinds.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps spellings to keyword kinds.
var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsLiteral reports whether k is an identifier or basic literal.
func (k Kind) IsLiteral() bool { return literalBeg < k && k < literalEnd }

// IsOperator reports whether k is an operator or delimiter.
func (k Kind) IsOperator() bool { return operatorBeg < k && k < operatorEnd }

// IsKeyword reports whether k is a keyword (including pure).
func (k Kind) IsKeyword() bool { return keywordBeg < k && k < keywordEnd }

// IsAssignOp reports whether k is one of the assignment operators
// (=, +=, ..., >>=).
func (k Kind) IsAssignOp() bool { return ASSIGN <= k && k <= SHRASSIGN }

// AssignBinOp returns the arithmetic operator underlying a compound
// assignment (ADD for ADDASSIGN and so on) and false for plain ASSIGN
// or non-assignment kinds.
func (k Kind) AssignBinOp() (Kind, bool) {
	switch k {
	case ADDASSIGN:
		return ADD, true
	case SUBASSIGN:
		return SUB, true
	case MULASSIGN:
		return MUL, true
	case QUOASSIGN:
		return QUO, true
	case REMASSIGN:
		return REM, true
	case ANDASSIGN:
		return AND, true
	case ORASSIGN:
		return OR, true
	case XORASSIGN:
		return XOR, true
	case SHLASSIGN:
		return SHL, true
	case SHRASSIGN:
		return SHR, true
	}
	return ILLEGAL, false
}

// Precedence returns the binary-operator precedence of k following C,
// with higher numbers binding tighter; it returns 0 for non-binary-operator
// kinds. The conditional and assignment operators are handled separately
// by the parser because of their right associativity.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, LEQ, GTR, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}

// Pos is a source position: 1-based line and column plus the file name the
// position belongs to.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String formats the position as file:line:col, omitting empty parts.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is one lexical token with its source position and original spelling.
type Token struct {
	Kind Kind
	Lit  string // original spelling for literals, identifiers, comments, pragmas
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch {
	case t.Kind == EOF:
		return "EOF"
	case t.Kind.IsLiteral() || t.Kind == COMMENT || t.Kind == PRAGMA || t.Kind == ILLEGAL:
		return fmt.Sprintf("%s(%q)", names[t.Kind], t.Lit)
	default:
		return t.Kind.String()
	}
}

// Text returns the source spelling of the token: the literal text when
// present, otherwise the fixed spelling of the kind.
func (t Token) Text() string {
	if t.Lit != "" {
		return t.Lit
	}
	return t.Kind.String()
}
