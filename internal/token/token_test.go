package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"pure":   PURE,
		"int":    INT,
		"for":    FOR,
		"const":  CONST,
		"struct": STRUCT,
		"foo":    IDENT,
		"Pure":   IDENT, // case sensitive
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestClassification(t *testing.T) {
	if !PURE.IsKeyword() || PURE.IsOperator() || PURE.IsLiteral() {
		t.Error("pure must be keyword only")
	}
	if !INTLIT.IsLiteral() || INTLIT.IsKeyword() {
		t.Error("INTLIT classification")
	}
	if !ADD.IsOperator() || ADD.IsLiteral() {
		t.Error("ADD classification")
	}
}

func TestAssignOps(t *testing.T) {
	if !ASSIGN.IsAssignOp() || !ADDASSIGN.IsAssignOp() || !SHRASSIGN.IsAssignOp() {
		t.Error("assign op classification")
	}
	if ADD.IsAssignOp() {
		t.Error("+ is not an assign op")
	}
	if op, ok := ADDASSIGN.AssignBinOp(); !ok || op != ADD {
		t.Errorf("ADDASSIGN -> %v %v", op, ok)
	}
	if _, ok := ASSIGN.AssignBinOp(); ok {
		t.Error("plain = has no binop")
	}
}

func TestPrecedence(t *testing.T) {
	ordered := []Kind{LOR, LAND, OR, XOR, AND, EQL, LSS, SHL, ADD, MUL}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].Precedence() >= ordered[i].Precedence() {
			t.Errorf("%v must bind looser than %v", ordered[i-1], ordered[i])
		}
	}
	if SEMI.Precedence() != 0 {
		t.Error("semi has no precedence")
	}
}

func TestPosString(t *testing.T) {
	p := Pos{File: "a.c", Line: 3, Col: 7}
	if p.String() != "a.c:3:7" {
		t.Errorf("pos: %s", p)
	}
	if (Pos{}).IsValid() {
		t.Error("zero pos must be invalid")
	}
}

func TestTokenText(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.Text() != "foo" {
		t.Errorf("text: %s", tok.Text())
	}
	tok2 := Token{Kind: ADDASSIGN}
	if tok2.Text() != "+=" {
		t.Errorf("text: %s", tok2.Text())
	}
}
