package scop

import (
	"fmt"
	"strings"

	"purec/internal/ast"
)

// MarkPragmas surrounds every detected SCoP's outer loop with
// #pragma scop / #pragma endscop statements, rewriting the enclosing
// function bodies in place — the marking step of the paper's PC-CC stage.
func MarkPragmas(scops []*SCoP) {
	for _, sc := range scops {
		insertAround(sc.Func.Body, sc.Outer,
			&ast.PragmaStmt{PragmaPos: sc.Outer.Pos(), Text: "#pragma scop"},
			&ast.PragmaStmt{PragmaPos: sc.Outer.Pos(), Text: "#pragma endscop"})
	}
}

// insertAround walks the statement tree and brackets target with before/
// after wherever it appears in a block.
func insertAround(b *ast.BlockStmt, target ast.Stmt, before, after ast.Stmt) bool {
	for i, s := range b.List {
		if s == target {
			out := make([]ast.Stmt, 0, len(b.List)+2)
			out = append(out, b.List[:i]...)
			out = append(out, before, target, after)
			out = append(out, b.List[i+1:]...)
			b.List = out
			return true
		}
		if inner, ok := s.(*ast.BlockStmt); ok {
			if insertAround(inner, target, before, after) {
				return true
			}
		}
		if f, ok := s.(*ast.ForStmt); ok {
			if inner, ok := f.Body.(*ast.BlockStmt); ok && insertAround(inner, target, before, after) {
				return true
			}
		}
		if iff, ok := s.(*ast.IfStmt); ok {
			if inner, ok := iff.Then.(*ast.BlockStmt); ok && insertAround(inner, target, before, after) {
				return true
			}
			if inner, ok := iff.Else.(*ast.BlockStmt); ok && insertAround(inner, target, before, after) {
				return true
			}
		}
	}
	return false
}

// Substitution records one temporarily replaced pure call, keyed by the
// unique placeholder name (the paper's tmpConst_fnAB mechanism).
type Substitution struct {
	Name string
	Call *ast.CallExpr
}

// SubstituteCalls replaces every pure call in the SCoP body by a unique
// placeholder identifier tmpConst_<fn>_<k> so the polyhedral stage sees
// the calls as constants (Sect. 3.3). It returns the substitutions needed
// to restore them.
func SubstituteCalls(sc *SCoP) []Substitution {
	var subs []Substitution
	seq := 0
	for _, stmt := range sc.BodyStmts {
		ast.RewriteExpr(stmt, func(e ast.Expr) ast.Expr {
			call, ok := e.(*ast.CallExpr)
			if !ok || !isPureCallOf(sc, call) {
				return e
			}
			name := fmt.Sprintf("tmpConst_%s_%d", call.Fun.Name, seq)
			seq++
			subs = append(subs, Substitution{Name: name, Call: call})
			return &ast.Ident{NamePos: call.Pos(), Name: name}
		})
	}
	return subs
}

// RestoreCalls re-inserts the substituted calls, the inverse of
// SubstituteCalls after the polyhedral stage has finished.
func RestoreCalls(sc *SCoP, subs []Substitution) {
	byName := make(map[string]*ast.CallExpr, len(subs))
	for _, s := range subs {
		byName[s.Name] = s.Call
	}
	for _, stmt := range sc.BodyStmts {
		ast.RewriteExpr(stmt, func(e ast.Expr) ast.Expr {
			id, ok := e.(*ast.Ident)
			if !ok {
				return e
			}
			if call, hit := byName[id.Name]; hit {
				return call
			}
			return e
		})
	}
}

// IsPlaceholder reports whether name is a tmpConst_ substitution
// placeholder.
func IsPlaceholder(name string) bool { return strings.HasPrefix(name, "tmpConst_") }

func isPureCallOf(sc *SCoP, call *ast.CallExpr) bool {
	for _, c := range sc.PureCalls {
		if c == call {
			return true
		}
	}
	return false
}
