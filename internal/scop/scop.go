// Package scop detects static control parts (SCoPs): loop nests that can
// be handed to the polyhedral transformer.
//
// This is the loop-marking half of the paper's PC-CC stage: each for-loop
// nest is checked for affine bounds, affine array accesses and — the
// paper's contribution — function calls restricted to verified pure
// functions. Qualifying nests are surrounded by #pragma scop /
// #pragma endscop markers, pure calls are temporarily substituted by
// tmpConst_* placeholders so the polyhedral stage sees them as constants
// (Sect. 3.3), and the Listing-5 safety check rejects nests that pass an
// array to a pure function while also writing that array in the nest.
package scop

import (
	"fmt"

	"purec/internal/ast"
	"purec/internal/poly"
	"purec/internal/purity"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// LoopInfo describes one loop of a detected nest.
type LoopInfo struct {
	For   *ast.ForStmt
	Iter  string
	Lower ast.Expr // inclusive lower bound expression
	Upper ast.Expr // inclusive upper bound expression
	LB    poly.Affine
	UB    poly.Affine
}

// SCoP is a detected static control part: a perfect affine for-loop nest
// whose body only reads/writes arrays with affine subscripts and calls
// verified pure functions.
type SCoP struct {
	Func  *ast.FuncDecl
	Outer *ast.ForStmt
	Loops []LoopInfo
	Nest  *poly.Nest
	// BodyStmts are the innermost body statements, parallel to Nest.Stmts.
	BodyStmts []ast.Stmt
	// PureCalls are the pure function calls appearing in the body.
	PureCalls []*ast.CallExpr
	// Reductions lists the recognized reduction accumulators of the body
	// (s op= expr statements whose accumulator has no other use in the
	// nest, and array updates like hist[a[i]]++ whose array is used
	// nowhere else). Their accesses are tagged in Nest and excluded from
	// the parallelism decision; the transformer emits a reduction clause
	// for them.
	Reductions []Reduction
	// PrivateScalars are body-local scalar definitions (`int j = e;`
	// and single-assignment `j = e;` forms) recognized as
	// iteration-private: each iteration defines the scalar before any
	// use, so it carries no cross-iteration dependence. The
	// transformer lists them in the pragma's private(...) clause; the
	// execution backends privatize them through the per-worker
	// environment clone.
	PrivateScalars []string
	// AliasNotes records, per pointer accessed in the body, the
	// points-to resolution the detector applied (exact region, may
	// set, or unknown) for -emit report diagnostics.
	AliasNotes []string
	// SubstPrivates maps decl-form private scalars whose initializer
	// stayed affine in the iterators through the whole body (`int j =
	// i + 5;`, never clamped or reassigned) to that initializer. The
	// transformer forward-substitutes them into their uses, so a body
	// like `int j = i + k; y[i] = x[j];` collapses to the single
	// statement the kernel fuser recognizes. Substitution is
	// value-preserving: an affine initializer is pure integer
	// arithmetic, so re-evaluation per use cannot trap or diverge.
	SubstPrivates map[string]ast.Expr
}

// Reduction is one recognized reduction accumulator: a canonical
// `Var op= expr` statement, a guarded min/max update
// (`if (x < m) m = x;` or its `?:` form), or — with IsArray — an
// array-element update (`A[f(i)] op= e`, `A[f(i)]++`/`--`, guarded
// min/max on `A[f(i)]`) of a local array used nowhere else in the
// nest. Op is the underlying binary operator (ADD, MUL, AND, OR,
// XOR — the associative-commutative subset of the OpenMP reduction
// operators; `--` counts as ADD of a negative contribution) or the
// comparison marker of a min/max pattern (LSS = min, GTR = max).
type Reduction struct {
	Var string
	Op  token.Kind
	// IsArray marks an array reduction: the runtime privatizes a full
	// per-worker copy of the array and combines element-wise.
	IsArray bool
}

// ClauseOp renders the operator as it appears in an OpenMP reduction
// clause ("min"/"max" for the if-pattern reductions).
func (r Reduction) ClauseOp() string {
	switch r.Op {
	case token.LSS:
		return "min"
	case token.GTR:
		return "max"
	}
	return r.Op.String()
}

// ClauseVar renders the clause's variable name: array reductions carry
// a [] suffix ("hist[]") so the executing backends know to privatize a
// whole array rather than one scalar slot.
func (r Reduction) ClauseVar() string {
	if r.IsArray {
		return r.Var + "[]"
	}
	return r.Var
}

// Iters returns the iterator names outermost-first.
func (s *SCoP) Iters() []string { return s.Nest.Iters }

// Result of SCoP detection.
type Result struct {
	SCoPs []*SCoP
	// Rejections explains, per for-loop that was considered but refused,
	// why it is not a SCoP (useful diagnostics, not errors).
	Rejections []string
	// Errors are Listing-5 violations: an array passed to a pure function
	// is also written in the loop nest — the paper's pass throws an
	// error in this case.
	Errors []error
}

// Options configure SCoP detection.
type Options struct {
	// AllowPureCalls enables the paper's extension: bodies may call
	// verified pure functions. With false the detector behaves like a
	// classic polyhedral front end (PluTo without the pure stage) and
	// rejects every loop containing any call — including malloc.
	AllowPureCalls bool
	// Aliases, when set, resolves guest pointers to their points-to
	// regions (internal/vra's flow-insensitive alias analysis
	// satisfies the interface). Accesses through exactly-resolved
	// pointers are renamed to their region for dependence analysis —
	// two pointers into one array then conflict, and provably disjoint
	// ones do not — while unresolved pointer accesses are marked
	// poly.Access.MayAlias for the transformer's conservative
	// serialization. A nil oracle (analysis disabled) marks every
	// pointer access MayAlias — never treating distinct pointer names
	// as distinct arrays, which could hide a real conflict.
	Aliases AliasOracle
}

// AliasOracle is the points-to interface SCoP detection consults for
// pointer-based accesses. internal/vra's AliasResult implements it.
type AliasOracle interface {
	// ResolveExact returns the unique target region and constant
	// element offset of a pointer, when the analysis proved them.
	ResolveExact(sym *sema.Symbol) (region string, off int64, ok bool)
	// MayPointTo returns the may-point-to region set of a pointer;
	// nil means the pointer may point anywhere.
	MayPointTo(sym *sema.Symbol) []string
	// Describe renders the pointer's points-to fact for diagnostics.
	Describe(sym *sema.Symbol) string
}

// Detect scans every function body for SCoPs with the paper's pure-call
// support enabled. Loops calling impure functions, with non-affine
// bounds or accesses, are rejected (recursing into their bodies to find
// inner SCoPs).
func Detect(info *sema.Info, pres *purity.Result) *Result {
	return DetectWith(info, pres, Options{AllowPureCalls: true})
}

// DetectWith is Detect with explicit options.
func DetectWith(info *sema.Info, pres *purity.Result, opts Options) *Result {
	d := &detector{info: info, pres: pres, opts: opts, res: &Result{}}
	for _, decl := range info.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		d.fn = fd
		d.scanStmts(fd.Body.List)
	}
	return d.res
}

type detector struct {
	info *sema.Info
	pres *purity.Result
	opts Options
	res  *Result
	fn   *ast.FuncDecl
}

func (d *detector) rejectf(pos token.Pos, format string, args ...any) {
	d.res.Rejections = append(d.res.Rejections,
		fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (d *detector) errorf(pos token.Pos, format string, args ...any) {
	d.res.Errors = append(d.res.Errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// scanStmts walks statements, trying each for-loop as a SCoP root and
// recursing into non-qualifying bodies.
func (d *detector) scanStmts(list []ast.Stmt) {
	for _, s := range list {
		d.scanStmt(s)
	}
}

func (d *detector) scanStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ForStmt:
		if sc := d.tryNest(x); sc != nil {
			d.res.SCoPs = append(d.res.SCoPs, sc)
			return
		}
		// Not a SCoP at this level: look inside.
		d.scanStmt(x.Body)
	case *ast.BlockStmt:
		d.scanStmts(x.List)
	case *ast.IfStmt:
		d.scanStmt(x.Then)
		if x.Else != nil {
			d.scanStmt(x.Else)
		}
	case *ast.WhileStmt:
		d.scanStmt(x.Body)
	case *ast.DoStmt:
		d.scanStmt(x.Body)
	case *ast.SwitchStmt:
		for _, c := range x.Cases {
			d.scanStmts(c.Body)
		}
	}
}

// tryNest attempts to interpret f as a perfect affine nest with a
// conforming body; nil when it does not qualify.
func (d *detector) tryNest(f *ast.ForStmt) *SCoP {
	sc := &SCoP{Func: d.fn, Outer: f}
	cur := f
	for {
		li, ok := d.loopInfo(cur)
		if !ok {
			return nil
		}
		sc.Loops = append(sc.Loops, li)
		inner, body := innerLoopOrBody(cur)
		if inner != nil {
			cur = inner
			continue
		}
		if !d.buildBody(sc, body) {
			return nil
		}
		return sc
	}
}

// innerLoopOrBody returns the single inner for-loop when the body is
// exactly one for statement (perfect nesting), otherwise the body
// statement list.
func innerLoopOrBody(f *ast.ForStmt) (*ast.ForStmt, []ast.Stmt) {
	switch b := f.Body.(type) {
	case *ast.ForStmt:
		return b, nil
	case *ast.BlockStmt:
		if len(b.List) == 1 {
			if inner, ok := b.List[0].(*ast.ForStmt); ok {
				return inner, nil
			}
		}
		return nil, b.List
	default:
		return nil, []ast.Stmt{f.Body}
	}
}

// loopInfo validates the canonical form  for (int i = LB; i </<= UB; i++)
// and extracts affine bounds.
func (d *detector) loopInfo(f *ast.ForStmt) (LoopInfo, bool) {
	li := LoopInfo{For: f}
	// init
	switch init := f.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			d.rejectf(f.Pos(), "loop init must declare a single iterator")
			return li, false
		}
		li.Iter = init.Decls[0].Name
		li.Lower = init.Decls[0].Init
	case *ast.ExprStmt:
		as, ok := init.X.(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			d.rejectf(f.Pos(), "loop init must be an assignment")
			return li, false
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			d.rejectf(f.Pos(), "loop iterator must be a simple variable")
			return li, false
		}
		li.Iter = id.Name
		li.Lower = as.RHS
	default:
		d.rejectf(f.Pos(), "missing loop initialization")
		return li, false
	}
	// cond: i < UB or i <= UB
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		d.rejectf(f.Pos(), "loop condition must be a comparison")
		return li, false
	}
	condID, ok := cond.X.(*ast.Ident)
	if !ok || condID.Name != li.Iter {
		d.rejectf(f.Pos(), "loop condition must compare the iterator")
		return li, false
	}
	switch cond.Op {
	case token.LSS:
		li.Upper = &ast.BinaryExpr{X: cond.Y, Op: token.SUB, Y: &ast.IntLit{Value: 1, Text: "1"}}
	case token.LEQ:
		li.Upper = cond.Y
	default:
		d.rejectf(f.Pos(), "loop condition must use < or <=")
		return li, false
	}
	// post: i++, ++i, i += 1
	if !isUnitStep(f.Post, li.Iter) {
		d.rejectf(f.Pos(), "loop step must be a unit increment")
		return li, false
	}
	return li, true
}

func isUnitStep(e ast.Expr, iter string) bool {
	switch x := e.(type) {
	case *ast.PostfixExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == iter && x.Op == token.INC
	case *ast.UnaryExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == iter && x.Op == token.INC
	case *ast.AssignExpr:
		id, ok := x.LHS.(*ast.Ident)
		if !ok || id.Name != iter || x.Op != token.ADDASSIGN {
			return false
		}
		v, ok := sema.ConstInt(x.RHS)
		return ok && v == 1
	}
	return false
}

// buildBody validates the innermost body and constructs the polyhedral
// nest (domain, statements, accesses) plus the pure-call list.
func (d *detector) buildBody(sc *SCoP, body []ast.Stmt) bool {
	iters := map[string]bool{}
	var iterNames []string
	for _, l := range sc.Loops {
		iters[l.Iter] = true
		iterNames = append(iterNames, l.Iter)
	}
	classify := func(name string) poly.VarClass {
		if iters[name] {
			return poly.ClassIter
		}
		// Integer scalars not written inside the nest act as parameters.
		if d.isNestParam(sc, name) {
			return poly.ClassParam
		}
		return poly.ClassOther
	}

	nest := &poly.Nest{Iters: iterNames, Domain: poly.NewSystem()}
	paramSet := map[string]bool{}
	for _, l := range sc.Loops {
		lb, err := poly.FromExpr(l.Lower, classify)
		if err != nil {
			d.rejectf(l.For.Pos(), "non-affine lower bound: %v", err)
			return false
		}
		ub, err := poly.FromExpr(l.Upper, classify)
		if err != nil {
			d.rejectf(l.For.Pos(), "non-affine upper bound: %v", err)
			return false
		}
		nest.Domain.AddLowerBound(l.Iter, lb)
		nest.Domain.AddUpperBound(l.Iter, ub)
		for _, v := range lb.Vars() {
			if !iters[v] {
				paramSet[v] = true
			}
		}
		for _, v := range ub.Vars() {
			if !iters[v] {
				paramSet[v] = true
			}
		}
		// Rebind bound fields for later AST regeneration.
	}

	b := &bodyBuilder{d: d, sc: sc, classify: classify, iters: iters,
		priv: map[string]privScalar{}, ptrSyms: map[string]*sema.Symbol{}}
	for seq, s := range body {
		st, ok := b.statement(s, seq)
		if !ok {
			return false
		}
		nest.Stmts = append(nest.Stmts, st)
		sc.BodyStmts = append(sc.BodyStmts, s)
	}
	for _, st := range nest.Stmts {
		for _, a := range st.Accesses() {
			for _, sub := range a.Subs {
				for _, v := range sub.Vars() {
					if !iters[v] {
						paramSet[v] = true
					}
				}
			}
		}
	}
	for p := range paramSet {
		nest.Params = append(nest.Params, p)
	}
	sc.Nest = nest
	sc.PureCalls = b.calls
	sc.PrivateScalars = b.privClause
	inClause := map[string]bool{}
	for _, n := range b.privClause {
		inClause[n] = true
	}
	for name, init := range b.declInit {
		if p := b.priv[name]; p.isAffine && !inClause[name] {
			if sc.SubstPrivates == nil {
				sc.SubstPrivates = map[string]ast.Expr{}
			}
			sc.SubstPrivates[name] = init
		}
	}
	d.recognizeReductions(sc, body)
	d.recognizeArrayReductions(sc, body, b.arrayCands)
	renamed := d.resolvePointerAccesses(sc, b)
	d.dropConflictingRegionReductions(sc, renamed)

	// Listing-5 check: arrays passed to pure functions must not be
	// written anywhere in the nest. Pointer arguments and writes are
	// compared by resolved region, so passing p (= &a[0]) while
	// assigning a is caught like passing a itself.
	writes := map[string]bool{}
	for _, st := range nest.Stmts {
		for _, w := range st.Writes {
			writes[w.Array] = true
		}
	}
	for _, call := range b.calls {
		for _, arg := range call.Args {
			base := arrayArgBase(d.info, arg)
			if r, ok := renamed[base]; ok {
				base = r
			}
			if base != "" && writes[base] {
				d.errorf(call.Pos(),
					"array %s is passed to pure function %s and assigned in the same loop nest (Listing 5); parallelization would change results",
					base, call.Fun.Name)
				return false
			}
		}
	}
	return true
}

// reductionOps maps the compound assignment operators that form
// canonical reductions to their underlying binary operator.
var reductionOps = map[token.Kind]token.Kind{
	token.ADDASSIGN: token.ADD,
	token.SUBASSIGN: token.SUB,
	token.MULASSIGN: token.MUL,
	token.ANDASSIGN: token.AND,
	token.ORASSIGN:  token.OR,
	token.XORASSIGN: token.XOR,
}

// binReductionOps is the same parallelizable subset keyed by the
// underlying binary operator. SUB qualifies by negation onto "+": the
// body's subtractions land in zero-seeded privates, whose partials
// fold back with addition (the OpenMP "-" clause semantics).
var binReductionOps = map[token.Kind]bool{
	token.ADD: true,
	token.SUB: true,
	token.MUL: true,
	token.AND: true,
	token.OR:  true,
	token.XOR: true,
}

// recognizeReductions finds canonical reduction statements in the
// innermost body: a top-level `s op= expr` where s is a function-local
// scalar whose ONLY appearance in the whole nest body is that compound
// assignment's left-hand side (so no other statement reads or writes the
// accumulator, and expr itself does not mention it), for an
// associative-commutative op. Qualifying accumulators get their scalar
// accesses tagged poly.Access.Reduction, which removes them from the
// parallelism decision, and are recorded on the SCoP so the transformer
// can emit reduction clauses.
//
// Global accumulators are excluded: the execution backends privatize the
// accumulator via per-worker frame clones, which global storage does not
// participate in.
func (d *detector) recognizeReductions(sc *SCoP, body []ast.Stmt) {
	uses := map[string]int{}
	for _, s := range body {
		for _, id := range ast.Idents(s) {
			uses[id.Name]++
		}
	}
	for k, s := range body {
		// Guarded min/max updates (if-pattern and ?: form): the
		// ROADMAP follow-up of the op= reductions below. The marker
		// operator is LSS for min, GTR for max.
		if m, _, op, ok := ast.MinMaxUpdate(s); ok {
			own := 0
			for _, id := range ast.Idents(s) {
				if id.Name == m.Name {
					own++
				}
			}
			if uses[m.Name] == own {
				d.tagReduction(sc, k, m, op)
			}
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		as, ok := es.X.(*ast.AssignExpr)
		if !ok {
			continue
		}
		if as.Op == token.ASSIGN {
			// Plain left-anchored subtraction s = s - e: the "-" clause's
			// spelled-out form. Only SUB gets plain-form recognition —
			// its compound form is the one op= spelling whose operands
			// don't commute, so the plain spelling is common in real
			// code; the accumulator must appear exactly twice in the
			// statement (LHS and the subtraction's left operand) and
			// nowhere else in the nest.
			id, okID := as.LHS.(*ast.Ident)
			bin, okBin := stripParens(as.RHS).(*ast.BinaryExpr)
			if !okID || !okBin || bin.Op != token.SUB {
				continue
			}
			x, okX := stripParens(bin.X).(*ast.Ident)
			if !okX || x.Name != id.Name {
				continue
			}
			own := 0
			for _, sid := range ast.Idents(s) {
				if sid.Name == id.Name {
					own++
				}
			}
			if own != 2 || uses[id.Name] != 2 {
				continue
			}
			d.tagReduction(sc, k, id, token.SUB)
			continue
		}
		op, ok := reductionOps[as.Op]
		if !ok {
			continue
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			continue
		}
		if uses[id.Name] != 1 {
			// The accumulator is read or written elsewhere in the nest
			// (or inside its own right-hand side): a real dependence.
			continue
		}
		d.tagReduction(sc, k, id, op)
	}
}

// tagReduction validates the accumulator symbol, tags its scalar
// accesses in body statement k as reduction accesses (removing them
// from the parallelism decision) and records the clause. Float
// accumulators support +, -, * and the min/max comparison markers.
func (d *detector) tagReduction(sc *SCoP, k int, id *ast.Ident, op token.Kind) {
	sym := d.info.Ref[id]
	if sym == nil || sym.Kind == sema.SymGlobal || sym.IsArray() ||
		sym.Type == nil || sym.Type.IsPtr() {
		return
	}
	switch sym.Type.Kind {
	case types.Int:
		// every recognized op applies
	case types.Float:
		if op != token.ADD && op != token.SUB && op != token.MUL && op != token.LSS && op != token.GTR {
			return
		}
	default:
		return
	}
	arr := "scalar:" + id.Name
	st := sc.Nest.Stmts[k]
	for i := range st.Writes {
		if st.Writes[i].Array == arr {
			st.Writes[i].Reduction = true
		}
	}
	for i := range st.Reads {
		if st.Reads[i].Array == arr {
			st.Reads[i].Reduction = true
		}
	}
	sc.Reductions = append(sc.Reductions, Reduction{Var: id.Name, Op: op})
}

// recognizeArrayReductions promotes the body builder's array-update
// candidates (A[e] op= v, A[e]++/--, guarded min/max on A[e]) to array
// reductions: A must be a function-local declared array whose every
// appearance in the nest body sits inside those candidate statements,
// and all candidates must agree on one associative-commutative
// operator (or one min/max direction). Qualifying arrays get their
// accesses tagged poly.Access.Reduction — dissolving the conservative
// star self-dependences — and a Reduction{IsArray: true} entry, which
// the transformer renders as a reduction(op:A[]) clause.
//
// Single-level pointer bases (float *p with p[e] op= v) qualify too:
// the runtime privatizes whatever segment the pointer addresses, and
// the alias resolution pass keeps the tagging sound (an unresolved
// pointer stays MayAlias and serializes; a resolved one conflicts by
// region name with any other access of its target). Global arrays and
// arrays read elsewhere in the nest (the hist[a[i]] = hist[b[i]] + 1
// near-miss) stay untagged: their star dependences serialize the nest
// and the transformer's SerialReason names the offending access.
func (d *detector) recognizeArrayReductions(sc *SCoP, body []ast.Stmt, cands []arrayCand) {
	if len(cands) == 0 {
		return
	}
	uses := map[string]int{}
	for _, s := range body {
		for _, id := range ast.Idents(s) {
			uses[id.Name]++
		}
	}
	byArr := map[string][]arrayCand{}
	var order []string
	for _, c := range cands {
		if _, seen := byArr[c.base.Name]; !seen {
			order = append(order, c.base.Name)
		}
		byArr[c.base.Name] = append(byArr[c.base.Name], c)
	}
	for _, name := range order {
		cs := byArr[name]
		op := cs[0].op
		sameOp := true
		own := 0
		for _, c := range cs {
			if c.op != op {
				sameOp = false
			}
			for _, id := range ast.Idents(body[c.stmt]) {
				if id.Name == name {
					own++
				}
			}
		}
		// Mixed operators on one array cannot share a single combine;
		// a use outside the candidate statements is a real dependence.
		if !sameOp || uses[name] != own {
			continue
		}
		sym := d.info.Ref[cs[0].base]
		if sym == nil || sym.Kind == sema.SymGlobal || sym.Type == nil {
			// Global accumulators live in Process storage shared by all
			// workers; the per-worker frame clone cannot privatize them.
			continue
		}
		if !sym.IsArray() {
			// Pointer bases privatize through their frame pointer slot
			// (the worker's clone is repointed at a private segment) —
			// but only single-level pointers: privatizing a row-pointer
			// table would still share the rows. Whether the target
			// region is disjoint from everything else the nest touches
			// is the alias resolution pass's concern: an unresolved
			// pointer's accesses stay MayAlias and the transformer
			// serializes the nest; a resolved one pairs with any other
			// access of its region as an ordinary dependence.
			if !sym.Type.IsPtr() || sym.Type.Elem == nil || sym.Type.Elem.IsPtr() {
				continue
			}
		}
		elem := sym.Type.BaseElem()
		if elem == nil {
			continue
		}
		switch elem.Kind {
		case types.Int:
			// every recognized op applies
		case types.Float:
			if op != token.ADD && op != token.SUB && op != token.MUL && op != token.LSS && op != token.GTR {
				continue
			}
		default:
			continue
		}
		for _, c := range cs {
			st := sc.Nest.Stmts[c.stmt]
			for i := range st.Writes {
				if st.Writes[i].Array == name {
					st.Writes[i].Reduction = true
				}
			}
			for i := range st.Reads {
				if st.Reads[i].Array == name {
					st.Reads[i].Reduction = true
				}
			}
		}
		sc.Reductions = append(sc.Reductions, Reduction{Var: name, Op: op, IsArray: true})
	}
}

// resolvePointerAccesses consults the alias oracle for every pointer
// used as an access base in the body. Exactly-resolved pointers get
// their accesses renamed to the target region — the pointer's constant
// element offset folded into the first (outermost) subscript — so
// dependence analysis sees through the indirection: two pointers into
// one array then conflict, and provably disjoint regions do not.
// Unresolved pointers get their accesses marked MayAlias; the
// transformer serializes such nests conservatively when a write is
// involved. The returned map records the applied renames (pointer name
// → region name).
//
// The pass runs after reduction recognition, which matches accesses by
// source name. Reduction tags survive the rename, and a conflict
// between a tagged pointer access and another access of the same
// region surfaces as an ordinary (non-reduction) dependence that
// serializes the nest.
func (d *detector) resolvePointerAccesses(sc *SCoP, b *bodyBuilder) map[string]string {
	renamed := map[string]string{}
	if len(b.ptrOrder) == 0 {
		return renamed
	}
	if d.opts.Aliases == nil {
		// No oracle (analysis disabled): every pointer access is
		// conservatively unresolved. Treating pointer names as distinct
		// arrays here would hide real conflicts — two pointers into one
		// segment must not look independent to the dependence analysis.
		for _, name := range b.ptrOrder {
			desc := name + " may point anywhere (alias analysis disabled)"
			sc.AliasNotes = append(sc.AliasNotes, desc)
			markMayAlias(sc.Nest, name, desc)
		}
		return renamed
	}
	for _, name := range b.ptrOrder {
		sym := b.ptrSyms[name]
		if region, off, ok := d.opts.Aliases.ResolveExact(sym); ok {
			renamed[name] = region
			note := fmt.Sprintf("%s -> %s", name, region)
			if off != 0 {
				note = fmt.Sprintf("%s -> %s[+%d]", name, region, off)
			}
			sc.AliasNotes = append(sc.AliasNotes,
				note+" (exact: accesses analyzed as "+region+")")
			renameAccesses(sc.Nest, name, region, off)
			continue
		}
		desc := d.opts.Aliases.Describe(sym)
		sc.AliasNotes = append(sc.AliasNotes, desc+" (unresolved: conservative)")
		markMayAlias(sc.Nest, name, desc)
	}
	return renamed
}

// renameAccesses rewrites every access through the named pointer to
// the resolved region, folding the constant element offset into the
// outermost subscript.
func renameAccesses(nest *poly.Nest, name, region string, off int64) {
	upd := func(a *poly.Access) {
		if a.Via != name || a.Array != name {
			return
		}
		a.Array = region
		if !a.Star && off != 0 && len(a.Subs) > 0 {
			a.Subs[0] = a.Subs[0].Add(poly.NewAffine(off))
		}
	}
	forEachAccess(nest, upd)
}

// markMayAlias flags every access through the named pointer as
// unresolved, carrying the oracle's description for diagnostics.
func markMayAlias(nest *poly.Nest, name, desc string) {
	forEachAccess(nest, func(a *poly.Access) {
		if a.Via != name {
			return
		}
		a.MayAlias = true
		if a.Note == "" {
			a.Note = desc
		}
	})
}

// forEachAccess applies f to every access of the nest, in place.
func forEachAccess(nest *poly.Nest, f func(*poly.Access)) {
	for _, st := range nest.Stmts {
		for i := range st.Writes {
			f(&st.Writes[i])
		}
		for i := range st.Reads {
			f(&st.Reads[i])
		}
	}
}

// dropConflictingRegionReductions demotes array reductions when two
// accumulators resolve to one region with different operators: each
// clause privatizes and combines its own accumulator slot, and two
// same-region clauses only decompose the serial result when they agree
// on one associative-commutative operator (same-op clauses commute and
// stay). Without the demotion the tagged accesses would dissolve their
// mutual dependences and miscompile the nest.
func (d *detector) dropConflictingRegionReductions(sc *SCoP, renamed map[string]string) {
	if len(renamed) == 0 || len(sc.Reductions) < 2 {
		return
	}
	regionOf := func(v string) string {
		if r, ok := renamed[v]; ok {
			return r
		}
		return v
	}
	ops := map[string]token.Kind{}
	conflict := map[string]bool{}
	for _, r := range sc.Reductions {
		if !r.IsArray {
			continue
		}
		reg := regionOf(r.Var)
		if op, seen := ops[reg]; seen && op != r.Op {
			conflict[reg] = true
		}
		ops[reg] = r.Op
	}
	if len(conflict) == 0 {
		return
	}
	kept := sc.Reductions[:0]
	for _, r := range sc.Reductions {
		if r.IsArray && conflict[regionOf(r.Var)] {
			forEachAccess(sc.Nest, func(a *poly.Access) {
				if a.Array == regionOf(r.Var) {
					a.Reduction = false
				}
			})
			continue
		}
		kept = append(kept, r)
	}
	sc.Reductions = kept
}

// isNestParam reports whether name is an integer scalar that is not
// assigned anywhere inside the candidate nest, making it a structure
// parameter of the polyhedron.
func (d *detector) isNestParam(sc *SCoP, name string) bool {
	var sym *sema.Symbol
	for _, id := range ast.Idents(sc.Outer) {
		if id.Name == name {
			if s := d.info.Ref[id]; s != nil {
				sym = s
				break
			}
		}
	}
	if sym == nil || sym.Type == nil || sym.Type.Kind != types.Int || sym.IsArray() {
		return false
	}
	// assigned in the nest?
	for _, a := range ast.Assignments(sc.Outer) {
		if id, ok := a.LHS.(*ast.Ident); ok && id.Name == name {
			return false
		}
	}
	return true
}

// arrayArgBase returns the base array name when arg is (a cast of) an
// array identifier or a row expression like A[i].
func arrayArgBase(info *sema.Info, arg ast.Expr) string {
	switch x := arg.(type) {
	case *ast.Ident:
		sym := info.Ref[x]
		if sym != nil && (sym.IsArray() || sym.Type.IsPtr()) {
			return x.Name
		}
	case *ast.CastExpr:
		return arrayArgBase(info, x.X)
	case *ast.ParenExpr:
		return arrayArgBase(info, x.X)
	case *ast.IndexExpr:
		return arrayArgBase(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return arrayArgBase(info, x.X)
		}
	}
	return ""
}

// bodyBuilder converts body statements to polyhedral statements.
type bodyBuilder struct {
	d        *detector
	sc       *SCoP
	classify poly.ClassifyFunc
	iters    map[string]bool
	calls    []*ast.CallExpr
	nextID   int
	// starOK, while set, lets indexAccess fall back to conservative
	// star accesses for data-dependent subscripts (hist[a[i]]). It is
	// only enabled for statements whose store target is such an access
	// — the array-update family recognizeReductions may later tag as
	// array reductions.
	starOK bool
	// arrayCands are the array-update statements (A[e] op= v, ++/--,
	// guarded min/max on A[e]) found in the body; recognizeReductions
	// promotes them to array reductions when the array qualifies.
	arrayCands []arrayCand
	// priv maps body-defined private scalars to their definition. A
	// definition affine in the iterators/parameters is substituted
	// into later subscripts (so y[i] = x[j] with j = i + k stays an
	// affine access); a data-dependent one leaves the scalar opaque
	// and its subscript uses become star reads the value-range
	// analysis may later prove bounded.
	priv map[string]privScalar
	// privOrder lists priv keys in definition order; privClause is
	// the subset declared outside the loop, which the pragma must
	// list in its private(...) clause.
	privOrder  []string
	privClause []string
	// ptrSyms records, per pointer name used as an access base in the
	// body, its symbol — the alias resolution pass consults the
	// oracle for each entry after the accesses are built.
	ptrSyms map[string]*sema.Symbol
	// ptrOrder lists ptrSyms keys in first-use order.
	ptrOrder []string
	// declInit records the initializer of each decl-form private, for
	// the SubstPrivates export.
	declInit map[string]ast.Expr
}

// privScalar is one recognized iteration-private scalar definition.
type privScalar struct {
	affine   poly.Affine
	isAffine bool
}

// arrayCand is one candidate array-reduction update statement.
type arrayCand struct {
	stmt int        // body statement index
	base *ast.Ident // the updated array's base identifier
	op   token.Kind // ADD/MUL/AND/OR/XOR, or LSS/GTR for min/max
}

func (b *bodyBuilder) statement(s ast.Stmt, seq int) (*poly.Statement, bool) {
	st := &poly.Statement{ID: b.nextID, Seq: seq, Label: ast.PrintStmt(s)}
	b.nextID++
	switch x := s.(type) {
	case *ast.ExprStmt:
		// Guarded min/max on an array element in its ?: form
		// (lo[b[i]] = x < lo[b[i]] ? x : lo[b[i]]): an array-reduction
		// candidate, handled like the if-form below. The same ?: form
		// on a recognized private scalar is an iteration-local clamp.
		if target, data, dir, ok := ast.MinMaxUpdateLV(x); ok {
			if ix, okIx := target.(*ast.IndexExpr); okIx {
				return st, b.minMaxArrayUpdate(st, seq, ix, data, dir)
			}
			if id, okID := target.(*ast.Ident); okID {
				if done, okP := b.privMinMax(id, data, st); done {
					return st, okP
				}
			}
		}
		if done, ok := b.privAssign(x.X, st, seq); done {
			return st, ok
		}
		if done, ok := b.starUpdate(x.X, st, seq); done {
			return st, ok
		}
		if !b.expr(x.X, st, true) {
			return nil, false
		}
		return st, true
	case *ast.DeclStmt:
		// A body-local scalar declaration defines an iteration-private
		// value (int j = d[i]; or int j = i + k;): each iteration
		// re-executes the definition before any use, so the scalar
		// carries no cross-iteration dependence.
		if !b.privDecl(x, st) {
			return nil, false
		}
		return st, true
	case *ast.IfStmt:
		// The one conditional a SCoP body admits: a guarded min/max
		// accumulator update. The accumulator gets a read-modify-write
		// access pair (the guard reads it, the branch may write it);
		// the data expression is read once per occurrence, like the
		// source. Whether the statement parallelizes is decided later
		// by recognizeReductions plus dependence analysis.
		if target, data, dir, ok := ast.MinMaxUpdateLV(x); ok {
			if m, okM := target.(*ast.Ident); okM {
				// Clamping a private scalar (if (j < 0) j = 0;)
				// refines the iteration's own value: no shared state
				// is touched, so no scalar access is recorded.
				if done, okP := b.privMinMax(m, data, st); done {
					return st, okP
				}
				if !b.lhs(m, st, true) {
					return nil, false
				}
				if !b.expr(data, st, false) || !b.expr(data, st, false) {
					return nil, false
				}
				return st, true
			}
			if ix, okIx := target.(*ast.IndexExpr); okIx {
				return st, b.minMaxArrayUpdate(st, seq, ix, data, dir)
			}
		}
		b.d.rejectf(s.Pos(), "conditional in SCoP body is not a canonical min/max update (if (x < m) m = x;)")
		return nil, false
	case *ast.EmptyStmt:
		return st, true
	default:
		b.d.rejectf(s.Pos(), "loop body statement %T is not supported in a SCoP", s)
		return nil, false
	}
}

// minMaxArrayUpdate records the accesses of a guarded min/max update
// whose target is an array element (affine or data-dependent
// subscript) and registers the array-reduction candidate.
func (b *bodyBuilder) minMaxArrayUpdate(st *poly.Statement, seq int, target *ast.IndexExpr, data ast.Expr, dir token.Kind) bool {
	base := ast.BaseIdent(target)
	if base == nil {
		b.d.rejectf(target.Pos(), "array base must be a named array")
		return false
	}
	b.starOK = true
	defer func() { b.starOK = false }()
	// The guard reads the element, the branch may write it; the data
	// expression is read twice, like the source.
	if !b.indexAccess(target, st, true) || !b.indexAccess(target, st, false) {
		return false
	}
	if !b.expr(data, st, false) || !b.expr(data, st, false) {
		return false
	}
	if countAccesses(st, base.Name) == 2 {
		// Exactly the target's read-modify-write pair: any further
		// access of the array (a subscript like lo[lo[i]] reading the
		// accumulator) is a real dependence, not a reduction.
		b.arrayCands = append(b.arrayCands, arrayCand{stmt: seq, base: base, op: dir})
	}
	return true
}

// countAccesses counts the statement's accesses of the named array.
func countAccesses(st *poly.Statement, name string) int {
	n := 0
	for _, a := range st.Writes {
		if a.Array == name {
			n++
		}
	}
	for _, a := range st.Reads {
		if a.Array == name {
			n++
		}
	}
	return n
}

// privDecl consumes a body-local scalar declaration `int j = e;` as an
// iteration-private definition. The declaration executes anew every
// iteration, so the scalar is dead across iterations by construction;
// the statement records only the reads of the initializer. The one
// extra requirement is that every use of the name in the nest binds
// this declaration — a shadowed outer variable of the same name would
// confuse the name-keyed subscript analysis.
func (b *bodyBuilder) privDecl(ds *ast.DeclStmt, st *poly.Statement) bool {
	if len(ds.Decls) != 1 || ds.Decls[0].Init == nil {
		b.d.rejectf(ds.Pos(), "SCoP body declaration must declare a single initialized scalar")
		return false
	}
	vd := ds.Decls[0]
	sym := b.declSym(vd)
	if sym == nil || sym.IsArray() || sym.Type == nil ||
		sym.Type.Kind != types.Int || sym.Type.IsPtr() {
		b.d.rejectf(ds.Pos(), "declaration of %s in a SCoP body must be a plain int scalar", vd.Name)
		return false
	}
	if b.iters[vd.Name] || !b.uniqueName(vd.Name, sym) {
		b.d.rejectf(ds.Pos(), "declaration of %s shadows another variable used in the nest", vd.Name)
		return false
	}
	if !b.expr(vd.Init, st, false) {
		return false
	}
	b.definePriv(vd.Name, vd.Init, false)
	if b.declInit == nil {
		b.declInit = map[string]ast.Expr{}
	}
	b.declInit[vd.Name] = vd.Init
	return true
}

// privAssign consumes a single-assignment definition `j = e;` of a
// function-local int scalar as iteration-private: the nest must
// contain exactly this one store of j, no use of j may precede it in
// the body (a prior use would read the previous iteration's value, a
// real dependence), the definition must not read j itself, and j must
// be dead after the nest (no use elsewhere in the function). Each
// iteration's j is then self-contained and the statement records only
// the reads of e. done=false falls back to the scalar-write path.
func (b *bodyBuilder) privAssign(e ast.Expr, st *poly.Statement, seq int) (done, ok bool) {
	as, okAs := stripParens(e).(*ast.AssignExpr)
	if !okAs || as.Op != token.ASSIGN {
		return false, false
	}
	id, okID := stripParens(as.LHS).(*ast.Ident)
	if !okID || b.iters[id.Name] {
		return false, false
	}
	sym := b.d.info.Ref[id]
	if sym == nil || sym.Kind != sema.SymLocal || sym.IsArray() ||
		sym.Type == nil || sym.Type.Kind != types.Int || sym.Type.IsPtr() {
		return false, false
	}
	if !b.uniqueName(id.Name, sym) || !b.privatizable(sym, seq) {
		return false, false
	}
	for _, r := range ast.Idents(as.RHS) {
		if b.d.info.Ref[r] == sym {
			return false, false
		}
	}
	if !b.expr(as.RHS, st, false) {
		return true, false
	}
	b.definePriv(id.Name, as.RHS, true)
	return true, true
}

// privMinMax consumes a guarded min/max update whose target is an
// already-recognized private scalar: the clamp refines the iteration's
// own value (j = max(j, 0)), reading only the data expression; nothing
// another iteration could observe is touched, so no scalar access is
// recorded. The scalar's affine definition — if any — no longer holds
// after the clamp, so it becomes opaque and later subscript uses
// degrade to star reads the value-range analysis may prove bounded.
func (b *bodyBuilder) privMinMax(m *ast.Ident, data ast.Expr, st *poly.Statement) (done, ok bool) {
	if _, isPriv := b.priv[m.Name]; !isPriv {
		return false, false
	}
	b.priv[m.Name] = privScalar{}
	if !b.expr(data, st, false) || !b.expr(data, st, false) {
		return true, false
	}
	return true, true
}

// privatizable checks the single-store and no-prior-use conditions of
// privAssign: the nest stores the scalar exactly once (this
// assignment, no compound updates or ++/--), no body statement before
// seq mentions it, and every use of the symbol in the function sits
// inside the nest.
func (b *bodyBuilder) privatizable(sym *sema.Symbol, seq int) bool {
	stores := 0
	for _, as := range ast.Assignments(b.sc.Outer) {
		if lhs, okL := stripParens(as.LHS).(*ast.Ident); okL && b.d.info.Ref[lhs] == sym {
			stores++
		}
	}
	if stores != 1 {
		return false
	}
	for k := 0; k < seq && k < len(b.sc.BodyStmts); k++ {
		for _, prev := range ast.Idents(b.sc.BodyStmts[k]) {
			if b.d.info.Ref[prev] == sym {
				return false
			}
		}
	}
	inNest := 0
	for _, id := range ast.Idents(b.sc.Outer) {
		if b.d.info.Ref[id] == sym {
			inNest++
		}
	}
	inFn := 0
	for _, id := range ast.Idents(b.d.fn.Body) {
		if b.d.info.Ref[id] == sym {
			inFn++
		}
	}
	return inNest == inFn
}

// declSym finds the symbol a body-local declaration binds.
func (b *bodyBuilder) declSym(vd *ast.VarDecl) *sema.Symbol {
	for _, s := range b.d.info.FuncLocals[b.d.fn.Name] {
		if s.Decl == vd {
			return s
		}
	}
	return nil
}

// uniqueName reports whether every identifier of the given name inside
// the nest resolves to sym (no shadowing confusion).
func (b *bodyBuilder) uniqueName(name string, sym *sema.Symbol) bool {
	for _, id := range ast.Idents(b.sc.Outer) {
		if id.Name == name && b.d.info.Ref[id] != sym {
			return false
		}
	}
	return true
}

// definePriv registers a private scalar and tries to keep its affine
// definition for subscript substitution. clause marks scalars declared
// outside the loop (the `j = e;` form): those must appear in the
// pragma's private(...) clause, while body-local declarations are
// automatically private.
func (b *bodyBuilder) definePriv(name string, init ast.Expr, clause bool) {
	p := privScalar{}
	if a, err := b.affineSub(init); err == nil {
		p = privScalar{affine: a, isAffine: true}
	}
	if _, seen := b.priv[name]; !seen {
		b.privOrder = append(b.privOrder, name)
		if clause {
			b.privClause = append(b.privClause, name)
		}
	}
	b.priv[name] = p
}

// affineSub converts a subscript (or initializer) to affine form,
// treating affine private scalars as parameters and substituting their
// definitions — so y[i] = x[j] with j = i + k analyzes as x[i + k].
// Opaque private scalars classify as ClassOther, failing the
// conversion so the caller degrades the access to a star read.
func (b *bodyBuilder) affineSub(sub ast.Expr) (poly.Affine, error) {
	cls := b.classify
	if len(b.priv) > 0 {
		cls = func(name string) poly.VarClass {
			if p, okP := b.priv[name]; okP {
				if p.isAffine {
					return poly.ClassParam
				}
				return poly.ClassOther
			}
			return b.classify(name)
		}
	}
	a, err := poly.FromExpr(sub, cls)
	if err != nil {
		return a, err
	}
	for _, v := range a.Vars() {
		if p, okP := b.priv[v]; okP && p.isAffine {
			c := a.CoefOf(v)
			a = a.Sub(poly.Var(v).Scale(c)).Add(p.affine.Scale(c))
		}
	}
	return a, nil
}

// notePtr records a pointer used as an access base for the alias
// resolution pass.
func (b *bodyBuilder) notePtr(name string, sym *sema.Symbol) {
	if _, seen := b.ptrSyms[name]; !seen {
		b.ptrOrder = append(b.ptrOrder, name)
		b.ptrSyms[name] = sym
	}
}

// starUpdate handles body statements whose store target is an array
// access with a data-dependent subscript — `A[e]++`, `A[e]--`,
// `A[e] op= v` and the near-miss plain `A[e] = v`. done reports
// whether the statement was consumed (the caller falls back to the
// affine path otherwise); updates with an associative-commutative
// operator additionally register an array-reduction candidate.
func (b *bodyBuilder) starUpdate(e ast.Expr, st *poly.Statement, seq int) (done, ok bool) {
	var target *ast.IndexExpr
	var compoundOp token.Kind
	var candOp token.Kind
	var rhs ast.Expr
	switch x := e.(type) {
	case *ast.AssignExpr:
		ix, okIx := stripParens(x.LHS).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) {
			return false, false
		}
		target, rhs = ix, x.RHS
		if x.Op != token.ASSIGN {
			bin, okOp := x.Op.AssignBinOp()
			if !okOp {
				return false, false
			}
			compoundOp = bin
			if binReductionOps[bin] {
				candOp = bin
			}
		}
	case *ast.PostfixExpr:
		ix, okIx := stripParens(x.X).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) || (x.Op != token.INC && x.Op != token.DEC) {
			return false, false
		}
		// ++/-- are += 1 / -= 1: both sum contributions, so both map to
		// the + clause (the decrement accumulates a negative partial).
		target, compoundOp, candOp = ix, token.ADD, token.ADD
	case *ast.UnaryExpr:
		ix, okIx := stripParens(x.X).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) || (x.Op != token.INC && x.Op != token.DEC) {
			return false, false
		}
		target, compoundOp, candOp = ix, token.ADD, token.ADD
	default:
		return false, false
	}
	base := ast.BaseIdent(target)
	if base == nil {
		b.d.rejectf(target.Pos(), "array base must be a named array")
		return true, false
	}
	b.starOK = true
	defer func() { b.starOK = false }()
	if !b.indexAccess(target, st, true) {
		return true, false
	}
	if compoundOp != 0 {
		// Read-modify-write: the update reads the cell it writes.
		if !b.indexAccess(target, st, false) {
			return true, false
		}
	}
	if rhs != nil && !b.expr(rhs, st, false) {
		return true, false
	}
	// A reduction candidate's accesses of the array must be exactly
	// the target's read-modify-write pair. A further read — the
	// right-hand side or a subscript reading the accumulator, as in
	// hist[a[i]] += hist[b[i]] or hist[hist[i]]++ — is a real
	// dependence; registering such a statement would let the tagging
	// pass dissolve it and miscompile the nest.
	if candOp != 0 && countAccesses(st, base.Name) == 2 {
		b.arrayCands = append(b.arrayCands, arrayCand{stmt: seq, base: base, op: candOp})
	}
	return true, true
}

// subsAffine reports whether every subscript of the index chain is an
// affine expression of the nest's iterators and parameters.
func (b *bodyBuilder) subsAffine(e *ast.IndexExpr) bool {
	subs, _ := collectIndexChain(e)
	for _, sub := range subs {
		if _, err := b.affineSub(sub); err != nil {
			return false
		}
	}
	return true
}

// collectIndexChain flattens A[e1][e2]... into its subscripts and base.
func collectIndexChain(e *ast.IndexExpr) ([]ast.Expr, ast.Expr) {
	var subs []ast.Expr
	base := ast.Expr(e)
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			return subs, base
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		base = ix.X
	}
}

func stripParens(e ast.Expr) ast.Expr { return ast.Unparen(e) }

// expr collects accesses of e into st; topLevel allows one assignment.
func (b *bodyBuilder) expr(e ast.Expr, st *poly.Statement, topLevel bool) bool {
	switch x := e.(type) {
	case *ast.AssignExpr:
		if !topLevel {
			b.d.rejectf(x.Pos(), "nested assignment in SCoP body")
			return false
		}
		if !b.lhs(x.LHS, st, x.Op != token.ASSIGN) {
			return false
		}
		return b.expr(x.RHS, st, false)
	case *ast.BinaryExpr:
		return b.expr(x.X, st, false) && b.expr(x.Y, st, false)
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			return b.lhs(x.X, st, true)
		}
		return b.expr(x.X, st, false)
	case *ast.PostfixExpr:
		return b.lhs(x.X, st, true)
	case *ast.CondExpr:
		return b.expr(x.Cond, st, false) && b.expr(x.Then, st, false) && b.expr(x.Else, st, false)
	case *ast.ParenExpr:
		return b.expr(x.X, st, false)
	case *ast.CastExpr:
		return b.expr(x.X, st, false)
	case *ast.CallExpr:
		return b.call(x, st)
	case *ast.IndexExpr:
		return b.indexAccess(x, st, false)
	case *ast.Ident:
		return b.identRead(x, st)
	case *ast.IntLit, *ast.FloatLit, *ast.CharLit:
		return true
	case *ast.SizeofExpr:
		return true
	default:
		b.d.rejectf(e.Pos(), "unsupported expression %T in SCoP body", e)
		return false
	}
}

// lhs records a write access. compound marks read-modify-write (+=).
func (b *bodyBuilder) lhs(e ast.Expr, st *poly.Statement, compound bool) bool {
	switch x := e.(type) {
	case *ast.IndexExpr:
		if !b.indexAccess(x, st, true) {
			return false
		}
		if compound {
			if !b.indexAccess(x, st, false) {
				return false
			}
		}
		return true
	case *ast.Ident:
		// Writing a scalar that outlives the nest creates an all-level
		// dependence; model it as a 0-dimensional array access.
		sym := b.d.info.Ref[x]
		if sym == nil {
			return false
		}
		if b.iters[x.Name] {
			b.d.rejectf(x.Pos(), "loop iterator %s is modified in the body", x.Name)
			return false
		}
		st.Writes = append(st.Writes, poly.Access{Array: "scalar:" + x.Name, Write: true})
		if compound {
			st.Reads = append(st.Reads, poly.Access{Array: "scalar:" + x.Name})
		}
		return true
	case *ast.ParenExpr:
		return b.lhs(x.X, st, compound)
	default:
		b.d.rejectf(e.Pos(), "unsupported store target %T in SCoP body", e)
		return false
	}
}

// indexAccess records A[e1][e2]... with affine subscripts. With
// starOK set, a data-dependent subscript (hist[a[i]]) degrades to a
// conservative star access instead of rejecting the nest; the
// subscript expressions are then validated as ordinary reads.
func (b *bodyBuilder) indexAccess(e *ast.IndexExpr, st *poly.Statement, write bool) bool {
	subs, base := collectIndexChain(e)
	id, ok := base.(*ast.Ident)
	if !ok {
		b.d.rejectf(e.Pos(), "array base must be a named array")
		return false
	}
	acc := poly.Access{Array: id.Name, Write: write}
	if sym := b.d.info.Ref[id]; sym != nil && !sym.IsArray() &&
		sym.Type != nil && sym.Type.IsPtr() {
		// Pointer base: mark the access for the alias resolution pass,
		// which renames it to its points-to region (or flags it
		// MayAlias when unresolved).
		acc.Via = id.Name
		b.notePtr(id.Name, sym)
	}
	for _, sub := range subs {
		a, err := b.affineSub(sub)
		if err != nil {
			if !b.starOK && !(!write && b.gatherShape(subs)) {
				b.d.rejectf(sub.Pos(), "non-affine subscript: %v", err)
				return false
			}
			// Data-dependent cell: record a star access and validate
			// the subscripts as reads of their own (a[i] in
			// hist[a[i]] is a plain affine read of a). A gather-shaped
			// read (x[idx[i]]) is accepted even outside the array-update
			// family: it stays a conservative star unless the
			// value-range analysis later proves it bounded.
			for _, s := range subs {
				if !b.expr(s, st, false) {
					return false
				}
			}
			acc.Subs = nil
			acc.Star = true
			acc.Expr = ast.PrintExpr(e)
			acc.Index = indexArrayName(subs)
			acc.Ref = ast.Expr(e)
			if write {
				st.Writes = append(st.Writes, acc)
			} else {
				st.Reads = append(st.Reads, acc)
			}
			return true
		}
		acc.Subs = append(acc.Subs, a)
		// Subscript expressions may themselves read arrays — forbid.
	}
	if write {
		st.Writes = append(st.Writes, acc)
	} else {
		st.Reads = append(st.Reads, acc)
	}
	return true
}

// gatherShape reports whether every subscript in the chain is either
// affine, a one-level load of a named integer array (the idx[i] of
// x[idx[i]]), an opaque private scalar (the clamped j of x[j]), or a
// ?:-clamp over one of those forms — the data-dependent read forms the
// value-range analysis can try to prove bounded.
func (b *bodyBuilder) gatherShape(subs []ast.Expr) bool {
	for _, sub := range subs {
		if !b.gatherSub(sub) {
			return false
		}
	}
	return true
}

// gatherSub is gatherShape for one subscript.
func (b *bodyBuilder) gatherSub(sub ast.Expr) bool {
	if _, err := b.affineSub(sub); err == nil {
		return true
	}
	switch x := ast.Unparen(sub).(type) {
	case *ast.Ident:
		_, isPriv := b.priv[x.Name]
		return isPriv
	case *ast.IndexExpr:
		if _, ok := ast.Unparen(x.X).(*ast.Ident); !ok {
			return false
		}
		_, err := poly.FromExpr(x.Index, b.classify)
		return err == nil
	case *ast.CondExpr:
		// A min/max clamp written inline: every leaf of the ternary
		// (condition operands and both arms) must itself be a gather
		// subscript, e.g. x[d[i] < 0 ? 0 : (d[i] > 7 ? 7 : d[i])].
		cond, ok := ast.Unparen(x.Cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch cond.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return false
		}
		return b.gatherSub(cond.X) && b.gatherSub(cond.Y) &&
			b.gatherSub(x.Then) && b.gatherSub(x.Else)
	}
	return false
}

// indexArrayName names the index array of the first data-dependent
// subscript in the chain ("" when the subscript has no such shape).
func indexArrayName(subs []ast.Expr) string {
	for _, sub := range subs {
		if ix, ok := ast.Unparen(sub).(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

func (b *bodyBuilder) identRead(x *ast.Ident, st *poly.Statement) bool {
	// Scalar reads of iterators/params are free; reads of pointers are
	// row loads (e.g. passing A[i] handled in indexAccess/call).
	return true
}

// call validates a pure call and records the read accesses of its
// pointer arguments; this is precisely where the paper's extension kicks
// in — without verified purity the whole nest would be rejected.
func (b *bodyBuilder) call(x *ast.CallExpr, st *poly.Statement) bool {
	if !b.d.opts.AllowPureCalls {
		b.d.rejectf(x.Pos(), "function call %s in loop body (classic polyhedral mode: sections to be parallelized must not contain function calls)", x.Fun.Name)
		return false
	}
	if !b.d.pres.IsPure(x.Fun.Name) {
		b.d.rejectf(x.Pos(), "call of non-pure function %s prevents polyhedral analysis (mark it pure to enable parallelization)", x.Fun.Name)
		return false
	}
	b.calls = append(b.calls, x)
	for _, arg := range x.Args {
		if !b.callArg(arg, st) {
			return false
		}
	}
	return true
}

func (b *bodyBuilder) callArg(arg ast.Expr, st *poly.Statement) bool {
	switch x := arg.(type) {
	case *ast.CastExpr:
		return b.callArg(x.X, st)
	case *ast.ParenExpr:
		return b.callArg(x.X, st)
	case *ast.IndexExpr:
		// Row argument like A[i]: a read of that row.
		return b.indexAccess(x, st, false)
	case *ast.Ident:
		sym := b.d.info.Ref[x]
		if sym != nil && (sym.IsArray() || (sym.Type != nil && sym.Type.IsPtr())) {
			acc := poly.Access{Array: x.Name}
			if !sym.IsArray() && sym.Type != nil && sym.Type.IsPtr() {
				acc.Via = x.Name
				b.notePtr(x.Name, sym)
			}
			st.Reads = append(st.Reads, acc)
		}
		return true
	default:
		return b.expr(arg, st, false)
	}
}
