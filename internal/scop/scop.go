// Package scop detects static control parts (SCoPs): loop nests that can
// be handed to the polyhedral transformer.
//
// This is the loop-marking half of the paper's PC-CC stage: each for-loop
// nest is checked for affine bounds, affine array accesses and — the
// paper's contribution — function calls restricted to verified pure
// functions. Qualifying nests are surrounded by #pragma scop /
// #pragma endscop markers, pure calls are temporarily substituted by
// tmpConst_* placeholders so the polyhedral stage sees them as constants
// (Sect. 3.3), and the Listing-5 safety check rejects nests that pass an
// array to a pure function while also writing that array in the nest.
package scop

import (
	"fmt"

	"purec/internal/ast"
	"purec/internal/poly"
	"purec/internal/purity"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// LoopInfo describes one loop of a detected nest.
type LoopInfo struct {
	For   *ast.ForStmt
	Iter  string
	Lower ast.Expr // inclusive lower bound expression
	Upper ast.Expr // inclusive upper bound expression
	LB    poly.Affine
	UB    poly.Affine
}

// SCoP is a detected static control part: a perfect affine for-loop nest
// whose body only reads/writes arrays with affine subscripts and calls
// verified pure functions.
type SCoP struct {
	Func  *ast.FuncDecl
	Outer *ast.ForStmt
	Loops []LoopInfo
	Nest  *poly.Nest
	// BodyStmts are the innermost body statements, parallel to Nest.Stmts.
	BodyStmts []ast.Stmt
	// PureCalls are the pure function calls appearing in the body.
	PureCalls []*ast.CallExpr
	// Reductions lists the recognized reduction accumulators of the body
	// (s op= expr statements whose accumulator has no other use in the
	// nest, and array updates like hist[a[i]]++ whose array is used
	// nowhere else). Their accesses are tagged in Nest and excluded from
	// the parallelism decision; the transformer emits a reduction clause
	// for them.
	Reductions []Reduction
}

// Reduction is one recognized reduction accumulator: a canonical
// `Var op= expr` statement, a guarded min/max update
// (`if (x < m) m = x;` or its `?:` form), or — with IsArray — an
// array-element update (`A[f(i)] op= e`, `A[f(i)]++`/`--`, guarded
// min/max on `A[f(i)]`) of a local array used nowhere else in the
// nest. Op is the underlying binary operator (ADD, MUL, AND, OR,
// XOR — the associative-commutative subset of the OpenMP reduction
// operators; `--` counts as ADD of a negative contribution) or the
// comparison marker of a min/max pattern (LSS = min, GTR = max).
type Reduction struct {
	Var string
	Op  token.Kind
	// IsArray marks an array reduction: the runtime privatizes a full
	// per-worker copy of the array and combines element-wise.
	IsArray bool
}

// ClauseOp renders the operator as it appears in an OpenMP reduction
// clause ("min"/"max" for the if-pattern reductions).
func (r Reduction) ClauseOp() string {
	switch r.Op {
	case token.LSS:
		return "min"
	case token.GTR:
		return "max"
	}
	return r.Op.String()
}

// ClauseVar renders the clause's variable name: array reductions carry
// a [] suffix ("hist[]") so the executing backends know to privatize a
// whole array rather than one scalar slot.
func (r Reduction) ClauseVar() string {
	if r.IsArray {
		return r.Var + "[]"
	}
	return r.Var
}

// Iters returns the iterator names outermost-first.
func (s *SCoP) Iters() []string { return s.Nest.Iters }

// Result of SCoP detection.
type Result struct {
	SCoPs []*SCoP
	// Rejections explains, per for-loop that was considered but refused,
	// why it is not a SCoP (useful diagnostics, not errors).
	Rejections []string
	// Errors are Listing-5 violations: an array passed to a pure function
	// is also written in the loop nest — the paper's pass throws an
	// error in this case.
	Errors []error
}

// Options configure SCoP detection.
type Options struct {
	// AllowPureCalls enables the paper's extension: bodies may call
	// verified pure functions. With false the detector behaves like a
	// classic polyhedral front end (PluTo without the pure stage) and
	// rejects every loop containing any call — including malloc.
	AllowPureCalls bool
}

// Detect scans every function body for SCoPs with the paper's pure-call
// support enabled. Loops calling impure functions, with non-affine
// bounds or accesses, are rejected (recursing into their bodies to find
// inner SCoPs).
func Detect(info *sema.Info, pres *purity.Result) *Result {
	return DetectWith(info, pres, Options{AllowPureCalls: true})
}

// DetectWith is Detect with explicit options.
func DetectWith(info *sema.Info, pres *purity.Result, opts Options) *Result {
	d := &detector{info: info, pres: pres, opts: opts, res: &Result{}}
	for _, decl := range info.File.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		d.fn = fd
		d.scanStmts(fd.Body.List)
	}
	return d.res
}

type detector struct {
	info *sema.Info
	pres *purity.Result
	opts Options
	res  *Result
	fn   *ast.FuncDecl
}

func (d *detector) rejectf(pos token.Pos, format string, args ...any) {
	d.res.Rejections = append(d.res.Rejections,
		fmt.Sprintf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (d *detector) errorf(pos token.Pos, format string, args ...any) {
	d.res.Errors = append(d.res.Errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// scanStmts walks statements, trying each for-loop as a SCoP root and
// recursing into non-qualifying bodies.
func (d *detector) scanStmts(list []ast.Stmt) {
	for _, s := range list {
		d.scanStmt(s)
	}
}

func (d *detector) scanStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ForStmt:
		if sc := d.tryNest(x); sc != nil {
			d.res.SCoPs = append(d.res.SCoPs, sc)
			return
		}
		// Not a SCoP at this level: look inside.
		d.scanStmt(x.Body)
	case *ast.BlockStmt:
		d.scanStmts(x.List)
	case *ast.IfStmt:
		d.scanStmt(x.Then)
		if x.Else != nil {
			d.scanStmt(x.Else)
		}
	case *ast.WhileStmt:
		d.scanStmt(x.Body)
	case *ast.DoStmt:
		d.scanStmt(x.Body)
	case *ast.SwitchStmt:
		for _, c := range x.Cases {
			d.scanStmts(c.Body)
		}
	}
}

// tryNest attempts to interpret f as a perfect affine nest with a
// conforming body; nil when it does not qualify.
func (d *detector) tryNest(f *ast.ForStmt) *SCoP {
	sc := &SCoP{Func: d.fn, Outer: f}
	cur := f
	for {
		li, ok := d.loopInfo(cur)
		if !ok {
			return nil
		}
		sc.Loops = append(sc.Loops, li)
		inner, body := innerLoopOrBody(cur)
		if inner != nil {
			cur = inner
			continue
		}
		if !d.buildBody(sc, body) {
			return nil
		}
		return sc
	}
}

// innerLoopOrBody returns the single inner for-loop when the body is
// exactly one for statement (perfect nesting), otherwise the body
// statement list.
func innerLoopOrBody(f *ast.ForStmt) (*ast.ForStmt, []ast.Stmt) {
	switch b := f.Body.(type) {
	case *ast.ForStmt:
		return b, nil
	case *ast.BlockStmt:
		if len(b.List) == 1 {
			if inner, ok := b.List[0].(*ast.ForStmt); ok {
				return inner, nil
			}
		}
		return nil, b.List
	default:
		return nil, []ast.Stmt{f.Body}
	}
}

// loopInfo validates the canonical form  for (int i = LB; i </<= UB; i++)
// and extracts affine bounds.
func (d *detector) loopInfo(f *ast.ForStmt) (LoopInfo, bool) {
	li := LoopInfo{For: f}
	// init
	switch init := f.Init.(type) {
	case *ast.DeclStmt:
		if len(init.Decls) != 1 || init.Decls[0].Init == nil {
			d.rejectf(f.Pos(), "loop init must declare a single iterator")
			return li, false
		}
		li.Iter = init.Decls[0].Name
		li.Lower = init.Decls[0].Init
	case *ast.ExprStmt:
		as, ok := init.X.(*ast.AssignExpr)
		if !ok || as.Op != token.ASSIGN {
			d.rejectf(f.Pos(), "loop init must be an assignment")
			return li, false
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			d.rejectf(f.Pos(), "loop iterator must be a simple variable")
			return li, false
		}
		li.Iter = id.Name
		li.Lower = as.RHS
	default:
		d.rejectf(f.Pos(), "missing loop initialization")
		return li, false
	}
	// cond: i < UB or i <= UB
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		d.rejectf(f.Pos(), "loop condition must be a comparison")
		return li, false
	}
	condID, ok := cond.X.(*ast.Ident)
	if !ok || condID.Name != li.Iter {
		d.rejectf(f.Pos(), "loop condition must compare the iterator")
		return li, false
	}
	switch cond.Op {
	case token.LSS:
		li.Upper = &ast.BinaryExpr{X: cond.Y, Op: token.SUB, Y: &ast.IntLit{Value: 1, Text: "1"}}
	case token.LEQ:
		li.Upper = cond.Y
	default:
		d.rejectf(f.Pos(), "loop condition must use < or <=")
		return li, false
	}
	// post: i++, ++i, i += 1
	if !isUnitStep(f.Post, li.Iter) {
		d.rejectf(f.Pos(), "loop step must be a unit increment")
		return li, false
	}
	return li, true
}

func isUnitStep(e ast.Expr, iter string) bool {
	switch x := e.(type) {
	case *ast.PostfixExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == iter && x.Op == token.INC
	case *ast.UnaryExpr:
		id, ok := x.X.(*ast.Ident)
		return ok && id.Name == iter && x.Op == token.INC
	case *ast.AssignExpr:
		id, ok := x.LHS.(*ast.Ident)
		if !ok || id.Name != iter || x.Op != token.ADDASSIGN {
			return false
		}
		v, ok := sema.ConstInt(x.RHS)
		return ok && v == 1
	}
	return false
}

// buildBody validates the innermost body and constructs the polyhedral
// nest (domain, statements, accesses) plus the pure-call list.
func (d *detector) buildBody(sc *SCoP, body []ast.Stmt) bool {
	iters := map[string]bool{}
	var iterNames []string
	for _, l := range sc.Loops {
		iters[l.Iter] = true
		iterNames = append(iterNames, l.Iter)
	}
	classify := func(name string) poly.VarClass {
		if iters[name] {
			return poly.ClassIter
		}
		// Integer scalars not written inside the nest act as parameters.
		if d.isNestParam(sc, name) {
			return poly.ClassParam
		}
		return poly.ClassOther
	}

	nest := &poly.Nest{Iters: iterNames, Domain: poly.NewSystem()}
	paramSet := map[string]bool{}
	for _, l := range sc.Loops {
		lb, err := poly.FromExpr(l.Lower, classify)
		if err != nil {
			d.rejectf(l.For.Pos(), "non-affine lower bound: %v", err)
			return false
		}
		ub, err := poly.FromExpr(l.Upper, classify)
		if err != nil {
			d.rejectf(l.For.Pos(), "non-affine upper bound: %v", err)
			return false
		}
		nest.Domain.AddLowerBound(l.Iter, lb)
		nest.Domain.AddUpperBound(l.Iter, ub)
		for _, v := range lb.Vars() {
			if !iters[v] {
				paramSet[v] = true
			}
		}
		for _, v := range ub.Vars() {
			if !iters[v] {
				paramSet[v] = true
			}
		}
		// Rebind bound fields for later AST regeneration.
	}

	b := &bodyBuilder{d: d, sc: sc, classify: classify, iters: iters}
	for seq, s := range body {
		st, ok := b.statement(s, seq)
		if !ok {
			return false
		}
		nest.Stmts = append(nest.Stmts, st)
		sc.BodyStmts = append(sc.BodyStmts, s)
	}
	for _, st := range nest.Stmts {
		for _, a := range st.Accesses() {
			for _, sub := range a.Subs {
				for _, v := range sub.Vars() {
					if !iters[v] {
						paramSet[v] = true
					}
				}
			}
		}
	}
	for p := range paramSet {
		nest.Params = append(nest.Params, p)
	}
	sc.Nest = nest
	sc.PureCalls = b.calls
	d.recognizeReductions(sc, body)
	d.recognizeArrayReductions(sc, body, b.arrayCands)

	// Listing-5 check: arrays passed to pure functions must not be
	// written anywhere in the nest.
	writes := map[string]bool{}
	for _, st := range nest.Stmts {
		for _, w := range st.Writes {
			writes[w.Array] = true
		}
	}
	for _, call := range b.calls {
		for _, arg := range call.Args {
			if base := arrayArgBase(d.info, arg); base != "" && writes[base] {
				d.errorf(call.Pos(),
					"array %s is passed to pure function %s and assigned in the same loop nest (Listing 5); parallelization would change results",
					base, call.Fun.Name)
				return false
			}
		}
	}
	return true
}

// reductionOps maps the compound assignment operators that form
// canonical reductions to their underlying binary operator.
var reductionOps = map[token.Kind]token.Kind{
	token.ADDASSIGN: token.ADD,
	token.MULASSIGN: token.MUL,
	token.ANDASSIGN: token.AND,
	token.ORASSIGN:  token.OR,
	token.XORASSIGN: token.XOR,
}

// binReductionOps is the same associative-commutative subset keyed by
// the underlying binary operator.
var binReductionOps = map[token.Kind]bool{
	token.ADD: true,
	token.MUL: true,
	token.AND: true,
	token.OR:  true,
	token.XOR: true,
}

// recognizeReductions finds canonical reduction statements in the
// innermost body: a top-level `s op= expr` where s is a function-local
// scalar whose ONLY appearance in the whole nest body is that compound
// assignment's left-hand side (so no other statement reads or writes the
// accumulator, and expr itself does not mention it), for an
// associative-commutative op. Qualifying accumulators get their scalar
// accesses tagged poly.Access.Reduction, which removes them from the
// parallelism decision, and are recorded on the SCoP so the transformer
// can emit reduction clauses.
//
// Global accumulators are excluded: the execution backends privatize the
// accumulator via per-worker frame clones, which global storage does not
// participate in.
func (d *detector) recognizeReductions(sc *SCoP, body []ast.Stmt) {
	uses := map[string]int{}
	for _, s := range body {
		for _, id := range ast.Idents(s) {
			uses[id.Name]++
		}
	}
	for k, s := range body {
		// Guarded min/max updates (if-pattern and ?: form): the
		// ROADMAP follow-up of the op= reductions below. The marker
		// operator is LSS for min, GTR for max.
		if m, _, op, ok := ast.MinMaxUpdate(s); ok {
			own := 0
			for _, id := range ast.Idents(s) {
				if id.Name == m.Name {
					own++
				}
			}
			if uses[m.Name] == own {
				d.tagReduction(sc, k, m, op)
			}
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		as, ok := es.X.(*ast.AssignExpr)
		if !ok {
			continue
		}
		op, ok := reductionOps[as.Op]
		if !ok {
			continue
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok {
			continue
		}
		if uses[id.Name] != 1 {
			// The accumulator is read or written elsewhere in the nest
			// (or inside its own right-hand side): a real dependence.
			continue
		}
		d.tagReduction(sc, k, id, op)
	}
}

// tagReduction validates the accumulator symbol, tags its scalar
// accesses in body statement k as reduction accesses (removing them
// from the parallelism decision) and records the clause. Float
// accumulators support +, * and the min/max comparison markers.
func (d *detector) tagReduction(sc *SCoP, k int, id *ast.Ident, op token.Kind) {
	sym := d.info.Ref[id]
	if sym == nil || sym.Kind == sema.SymGlobal || sym.IsArray() ||
		sym.Type == nil || sym.Type.IsPtr() {
		return
	}
	switch sym.Type.Kind {
	case types.Int:
		// every recognized op applies
	case types.Float:
		if op != token.ADD && op != token.MUL && op != token.LSS && op != token.GTR {
			return
		}
	default:
		return
	}
	arr := "scalar:" + id.Name
	st := sc.Nest.Stmts[k]
	for i := range st.Writes {
		if st.Writes[i].Array == arr {
			st.Writes[i].Reduction = true
		}
	}
	for i := range st.Reads {
		if st.Reads[i].Array == arr {
			st.Reads[i].Reduction = true
		}
	}
	sc.Reductions = append(sc.Reductions, Reduction{Var: id.Name, Op: op})
}

// recognizeArrayReductions promotes the body builder's array-update
// candidates (A[e] op= v, A[e]++/--, guarded min/max on A[e]) to array
// reductions: A must be a function-local declared array whose every
// appearance in the nest body sits inside those candidate statements,
// and all candidates must agree on one associative-commutative
// operator (or one min/max direction). Qualifying arrays get their
// accesses tagged poly.Access.Reduction — dissolving the conservative
// star self-dependences — and a Reduction{IsArray: true} entry, which
// the transformer renders as a reduction(op:A[]) clause.
//
// Global arrays, pointer bases and arrays read elsewhere in the nest
// (the hist[a[i]] = hist[b[i]] + 1 near-miss) stay untagged: their
// star dependences serialize the nest and the transformer's
// SerialReason names the offending access.
func (d *detector) recognizeArrayReductions(sc *SCoP, body []ast.Stmt, cands []arrayCand) {
	if len(cands) == 0 {
		return
	}
	uses := map[string]int{}
	for _, s := range body {
		for _, id := range ast.Idents(s) {
			uses[id.Name]++
		}
	}
	byArr := map[string][]arrayCand{}
	var order []string
	for _, c := range cands {
		if _, seen := byArr[c.base.Name]; !seen {
			order = append(order, c.base.Name)
		}
		byArr[c.base.Name] = append(byArr[c.base.Name], c)
	}
	for _, name := range order {
		cs := byArr[name]
		op := cs[0].op
		sameOp := true
		own := 0
		for _, c := range cs {
			if c.op != op {
				sameOp = false
			}
			for _, id := range ast.Idents(body[c.stmt]) {
				if id.Name == name {
					own++
				}
			}
		}
		// Mixed operators on one array cannot share a single combine;
		// a use outside the candidate statements is a real dependence.
		if !sameOp || uses[name] != own {
			continue
		}
		sym := d.info.Ref[cs[0].base]
		if sym == nil || sym.Kind == sema.SymGlobal || !sym.IsArray() || sym.Type == nil {
			// Only function-local declared arrays privatize through the
			// per-worker frame clone; globals and pointer bases (whose
			// extent and aliasing are unknown) stay serial.
			continue
		}
		elem := sym.Type.BaseElem()
		if elem == nil {
			continue
		}
		switch elem.Kind {
		case types.Int:
			// every recognized op applies
		case types.Float:
			if op != token.ADD && op != token.MUL && op != token.LSS && op != token.GTR {
				continue
			}
		default:
			continue
		}
		for _, c := range cs {
			st := sc.Nest.Stmts[c.stmt]
			for i := range st.Writes {
				if st.Writes[i].Array == name {
					st.Writes[i].Reduction = true
				}
			}
			for i := range st.Reads {
				if st.Reads[i].Array == name {
					st.Reads[i].Reduction = true
				}
			}
		}
		sc.Reductions = append(sc.Reductions, Reduction{Var: name, Op: op, IsArray: true})
	}
}

// isNestParam reports whether name is an integer scalar that is not
// assigned anywhere inside the candidate nest, making it a structure
// parameter of the polyhedron.
func (d *detector) isNestParam(sc *SCoP, name string) bool {
	var sym *sema.Symbol
	for _, id := range ast.Idents(sc.Outer) {
		if id.Name == name {
			if s := d.info.Ref[id]; s != nil {
				sym = s
				break
			}
		}
	}
	if sym == nil || sym.Type == nil || sym.Type.Kind != types.Int || sym.IsArray() {
		return false
	}
	// assigned in the nest?
	for _, a := range ast.Assignments(sc.Outer) {
		if id, ok := a.LHS.(*ast.Ident); ok && id.Name == name {
			return false
		}
	}
	return true
}

// arrayArgBase returns the base array name when arg is (a cast of) an
// array identifier or a row expression like A[i].
func arrayArgBase(info *sema.Info, arg ast.Expr) string {
	switch x := arg.(type) {
	case *ast.Ident:
		sym := info.Ref[x]
		if sym != nil && (sym.IsArray() || sym.Type.IsPtr()) {
			return x.Name
		}
	case *ast.CastExpr:
		return arrayArgBase(info, x.X)
	case *ast.ParenExpr:
		return arrayArgBase(info, x.X)
	case *ast.IndexExpr:
		return arrayArgBase(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return arrayArgBase(info, x.X)
		}
	}
	return ""
}

// bodyBuilder converts body statements to polyhedral statements.
type bodyBuilder struct {
	d        *detector
	sc       *SCoP
	classify poly.ClassifyFunc
	iters    map[string]bool
	calls    []*ast.CallExpr
	nextID   int
	// starOK, while set, lets indexAccess fall back to conservative
	// star accesses for data-dependent subscripts (hist[a[i]]). It is
	// only enabled for statements whose store target is such an access
	// — the array-update family recognizeReductions may later tag as
	// array reductions.
	starOK bool
	// arrayCands are the array-update statements (A[e] op= v, ++/--,
	// guarded min/max on A[e]) found in the body; recognizeReductions
	// promotes them to array reductions when the array qualifies.
	arrayCands []arrayCand
}

// arrayCand is one candidate array-reduction update statement.
type arrayCand struct {
	stmt int        // body statement index
	base *ast.Ident // the updated array's base identifier
	op   token.Kind // ADD/MUL/AND/OR/XOR, or LSS/GTR for min/max
}

func (b *bodyBuilder) statement(s ast.Stmt, seq int) (*poly.Statement, bool) {
	st := &poly.Statement{ID: b.nextID, Seq: seq, Label: ast.PrintStmt(s)}
	b.nextID++
	switch x := s.(type) {
	case *ast.ExprStmt:
		// Guarded min/max on an array element in its ?: form
		// (lo[b[i]] = x < lo[b[i]] ? x : lo[b[i]]): an array-reduction
		// candidate, handled like the if-form below.
		if target, data, dir, ok := ast.MinMaxUpdateLV(x); ok {
			if ix, okIx := target.(*ast.IndexExpr); okIx {
				return st, b.minMaxArrayUpdate(st, seq, ix, data, dir)
			}
		}
		if done, ok := b.starUpdate(x.X, st, seq); done {
			return st, ok
		}
		if !b.expr(x.X, st, true) {
			return nil, false
		}
		return st, true
	case *ast.IfStmt:
		// The one conditional a SCoP body admits: a guarded min/max
		// accumulator update. The accumulator gets a read-modify-write
		// access pair (the guard reads it, the branch may write it);
		// the data expression is read once per occurrence, like the
		// source. Whether the statement parallelizes is decided later
		// by recognizeReductions plus dependence analysis.
		if target, data, dir, ok := ast.MinMaxUpdateLV(x); ok {
			if m, okM := target.(*ast.Ident); okM {
				if !b.lhs(m, st, true) {
					return nil, false
				}
				if !b.expr(data, st, false) || !b.expr(data, st, false) {
					return nil, false
				}
				return st, true
			}
			if ix, okIx := target.(*ast.IndexExpr); okIx {
				return st, b.minMaxArrayUpdate(st, seq, ix, data, dir)
			}
		}
		b.d.rejectf(s.Pos(), "conditional in SCoP body is not a canonical min/max update (if (x < m) m = x;)")
		return nil, false
	case *ast.EmptyStmt:
		return st, true
	default:
		b.d.rejectf(s.Pos(), "loop body statement %T is not supported in a SCoP", s)
		return nil, false
	}
}

// minMaxArrayUpdate records the accesses of a guarded min/max update
// whose target is an array element (affine or data-dependent
// subscript) and registers the array-reduction candidate.
func (b *bodyBuilder) minMaxArrayUpdate(st *poly.Statement, seq int, target *ast.IndexExpr, data ast.Expr, dir token.Kind) bool {
	base := ast.BaseIdent(target)
	if base == nil {
		b.d.rejectf(target.Pos(), "array base must be a named array")
		return false
	}
	b.starOK = true
	defer func() { b.starOK = false }()
	// The guard reads the element, the branch may write it; the data
	// expression is read twice, like the source.
	if !b.indexAccess(target, st, true) || !b.indexAccess(target, st, false) {
		return false
	}
	if !b.expr(data, st, false) || !b.expr(data, st, false) {
		return false
	}
	if countAccesses(st, base.Name) == 2 {
		// Exactly the target's read-modify-write pair: any further
		// access of the array (a subscript like lo[lo[i]] reading the
		// accumulator) is a real dependence, not a reduction.
		b.arrayCands = append(b.arrayCands, arrayCand{stmt: seq, base: base, op: dir})
	}
	return true
}

// countAccesses counts the statement's accesses of the named array.
func countAccesses(st *poly.Statement, name string) int {
	n := 0
	for _, a := range st.Writes {
		if a.Array == name {
			n++
		}
	}
	for _, a := range st.Reads {
		if a.Array == name {
			n++
		}
	}
	return n
}

// starUpdate handles body statements whose store target is an array
// access with a data-dependent subscript — `A[e]++`, `A[e]--`,
// `A[e] op= v` and the near-miss plain `A[e] = v`. done reports
// whether the statement was consumed (the caller falls back to the
// affine path otherwise); updates with an associative-commutative
// operator additionally register an array-reduction candidate.
func (b *bodyBuilder) starUpdate(e ast.Expr, st *poly.Statement, seq int) (done, ok bool) {
	var target *ast.IndexExpr
	var compoundOp token.Kind
	var candOp token.Kind
	var rhs ast.Expr
	switch x := e.(type) {
	case *ast.AssignExpr:
		ix, okIx := stripParens(x.LHS).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) {
			return false, false
		}
		target, rhs = ix, x.RHS
		if x.Op != token.ASSIGN {
			bin, okOp := x.Op.AssignBinOp()
			if !okOp {
				return false, false
			}
			compoundOp = bin
			if binReductionOps[bin] {
				candOp = bin
			}
		}
	case *ast.PostfixExpr:
		ix, okIx := stripParens(x.X).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) || (x.Op != token.INC && x.Op != token.DEC) {
			return false, false
		}
		// ++/-- are += 1 / -= 1: both sum contributions, so both map to
		// the + clause (the decrement accumulates a negative partial).
		target, compoundOp, candOp = ix, token.ADD, token.ADD
	case *ast.UnaryExpr:
		ix, okIx := stripParens(x.X).(*ast.IndexExpr)
		if !okIx || b.subsAffine(ix) || (x.Op != token.INC && x.Op != token.DEC) {
			return false, false
		}
		target, compoundOp, candOp = ix, token.ADD, token.ADD
	default:
		return false, false
	}
	base := ast.BaseIdent(target)
	if base == nil {
		b.d.rejectf(target.Pos(), "array base must be a named array")
		return true, false
	}
	b.starOK = true
	defer func() { b.starOK = false }()
	if !b.indexAccess(target, st, true) {
		return true, false
	}
	if compoundOp != 0 {
		// Read-modify-write: the update reads the cell it writes.
		if !b.indexAccess(target, st, false) {
			return true, false
		}
	}
	if rhs != nil && !b.expr(rhs, st, false) {
		return true, false
	}
	// A reduction candidate's accesses of the array must be exactly
	// the target's read-modify-write pair. A further read — the
	// right-hand side or a subscript reading the accumulator, as in
	// hist[a[i]] += hist[b[i]] or hist[hist[i]]++ — is a real
	// dependence; registering such a statement would let the tagging
	// pass dissolve it and miscompile the nest.
	if candOp != 0 && countAccesses(st, base.Name) == 2 {
		b.arrayCands = append(b.arrayCands, arrayCand{stmt: seq, base: base, op: candOp})
	}
	return true, true
}

// subsAffine reports whether every subscript of the index chain is an
// affine expression of the nest's iterators and parameters.
func (b *bodyBuilder) subsAffine(e *ast.IndexExpr) bool {
	subs, _ := collectIndexChain(e)
	for _, sub := range subs {
		if _, err := poly.FromExpr(sub, b.classify); err != nil {
			return false
		}
	}
	return true
}

// collectIndexChain flattens A[e1][e2]... into its subscripts and base.
func collectIndexChain(e *ast.IndexExpr) ([]ast.Expr, ast.Expr) {
	var subs []ast.Expr
	base := ast.Expr(e)
	for {
		ix, ok := base.(*ast.IndexExpr)
		if !ok {
			return subs, base
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		base = ix.X
	}
}

func stripParens(e ast.Expr) ast.Expr { return ast.Unparen(e) }

// expr collects accesses of e into st; topLevel allows one assignment.
func (b *bodyBuilder) expr(e ast.Expr, st *poly.Statement, topLevel bool) bool {
	switch x := e.(type) {
	case *ast.AssignExpr:
		if !topLevel {
			b.d.rejectf(x.Pos(), "nested assignment in SCoP body")
			return false
		}
		if !b.lhs(x.LHS, st, x.Op != token.ASSIGN) {
			return false
		}
		return b.expr(x.RHS, st, false)
	case *ast.BinaryExpr:
		return b.expr(x.X, st, false) && b.expr(x.Y, st, false)
	case *ast.UnaryExpr:
		if x.Op == token.INC || x.Op == token.DEC {
			return b.lhs(x.X, st, true)
		}
		return b.expr(x.X, st, false)
	case *ast.PostfixExpr:
		return b.lhs(x.X, st, true)
	case *ast.CondExpr:
		return b.expr(x.Cond, st, false) && b.expr(x.Then, st, false) && b.expr(x.Else, st, false)
	case *ast.ParenExpr:
		return b.expr(x.X, st, false)
	case *ast.CastExpr:
		return b.expr(x.X, st, false)
	case *ast.CallExpr:
		return b.call(x, st)
	case *ast.IndexExpr:
		return b.indexAccess(x, st, false)
	case *ast.Ident:
		return b.identRead(x, st)
	case *ast.IntLit, *ast.FloatLit, *ast.CharLit:
		return true
	case *ast.SizeofExpr:
		return true
	default:
		b.d.rejectf(e.Pos(), "unsupported expression %T in SCoP body", e)
		return false
	}
}

// lhs records a write access. compound marks read-modify-write (+=).
func (b *bodyBuilder) lhs(e ast.Expr, st *poly.Statement, compound bool) bool {
	switch x := e.(type) {
	case *ast.IndexExpr:
		if !b.indexAccess(x, st, true) {
			return false
		}
		if compound {
			if !b.indexAccess(x, st, false) {
				return false
			}
		}
		return true
	case *ast.Ident:
		// Writing a scalar that outlives the nest creates an all-level
		// dependence; model it as a 0-dimensional array access.
		sym := b.d.info.Ref[x]
		if sym == nil {
			return false
		}
		if b.iters[x.Name] {
			b.d.rejectf(x.Pos(), "loop iterator %s is modified in the body", x.Name)
			return false
		}
		st.Writes = append(st.Writes, poly.Access{Array: "scalar:" + x.Name, Write: true})
		if compound {
			st.Reads = append(st.Reads, poly.Access{Array: "scalar:" + x.Name})
		}
		return true
	case *ast.ParenExpr:
		return b.lhs(x.X, st, compound)
	default:
		b.d.rejectf(e.Pos(), "unsupported store target %T in SCoP body", e)
		return false
	}
}

// indexAccess records A[e1][e2]... with affine subscripts. With
// starOK set, a data-dependent subscript (hist[a[i]]) degrades to a
// conservative star access instead of rejecting the nest; the
// subscript expressions are then validated as ordinary reads.
func (b *bodyBuilder) indexAccess(e *ast.IndexExpr, st *poly.Statement, write bool) bool {
	subs, base := collectIndexChain(e)
	id, ok := base.(*ast.Ident)
	if !ok {
		b.d.rejectf(e.Pos(), "array base must be a named array")
		return false
	}
	acc := poly.Access{Array: id.Name, Write: write}
	for _, sub := range subs {
		a, err := poly.FromExpr(sub, b.classify)
		if err != nil {
			if !b.starOK && !(!write && b.gatherShape(subs)) {
				b.d.rejectf(sub.Pos(), "non-affine subscript: %v", err)
				return false
			}
			// Data-dependent cell: record a star access and validate
			// the subscripts as reads of their own (a[i] in
			// hist[a[i]] is a plain affine read of a). A gather-shaped
			// read (x[idx[i]]) is accepted even outside the array-update
			// family: it stays a conservative star unless the
			// value-range analysis later proves it bounded.
			for _, s := range subs {
				if !b.expr(s, st, false) {
					return false
				}
			}
			acc.Subs = nil
			acc.Star = true
			acc.Expr = ast.PrintExpr(e)
			acc.Index = indexArrayName(subs)
			acc.Ref = ast.Expr(e)
			if write {
				st.Writes = append(st.Writes, acc)
			} else {
				st.Reads = append(st.Reads, acc)
			}
			return true
		}
		acc.Subs = append(acc.Subs, a)
		// Subscript expressions may themselves read arrays — forbid.
	}
	if write {
		st.Writes = append(st.Writes, acc)
	} else {
		st.Reads = append(st.Reads, acc)
	}
	return true
}

// gatherShape reports whether every subscript in the chain is either
// affine or a one-level load of a named integer array (the idx[i] of
// x[idx[i]]) — the data-dependent read form the value-range analysis
// can try to prove bounded.
func (b *bodyBuilder) gatherShape(subs []ast.Expr) bool {
	for _, sub := range subs {
		if _, err := poly.FromExpr(sub, b.classify); err == nil {
			continue
		}
		ix, ok := ast.Unparen(sub).(*ast.IndexExpr)
		if !ok {
			return false
		}
		if _, ok := ast.Unparen(ix.X).(*ast.Ident); !ok {
			return false
		}
		if _, err := poly.FromExpr(ix.Index, b.classify); err != nil {
			return false
		}
	}
	return true
}

// indexArrayName names the index array of the first data-dependent
// subscript in the chain ("" when the subscript has no such shape).
func indexArrayName(subs []ast.Expr) string {
	for _, sub := range subs {
		if ix, ok := ast.Unparen(sub).(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok {
				return id.Name
			}
		}
	}
	return ""
}

func (b *bodyBuilder) identRead(x *ast.Ident, st *poly.Statement) bool {
	// Scalar reads of iterators/params are free; reads of pointers are
	// row loads (e.g. passing A[i] handled in indexAccess/call).
	return true
}

// call validates a pure call and records the read accesses of its
// pointer arguments; this is precisely where the paper's extension kicks
// in — without verified purity the whole nest would be rejected.
func (b *bodyBuilder) call(x *ast.CallExpr, st *poly.Statement) bool {
	if !b.d.opts.AllowPureCalls {
		b.d.rejectf(x.Pos(), "function call %s in loop body (classic polyhedral mode: sections to be parallelized must not contain function calls)", x.Fun.Name)
		return false
	}
	if !b.d.pres.IsPure(x.Fun.Name) {
		b.d.rejectf(x.Pos(), "call of non-pure function %s prevents polyhedral analysis (mark it pure to enable parallelization)", x.Fun.Name)
		return false
	}
	b.calls = append(b.calls, x)
	for _, arg := range x.Args {
		if !b.callArg(arg, st) {
			return false
		}
	}
	return true
}

func (b *bodyBuilder) callArg(arg ast.Expr, st *poly.Statement) bool {
	switch x := arg.(type) {
	case *ast.CastExpr:
		return b.callArg(x.X, st)
	case *ast.ParenExpr:
		return b.callArg(x.X, st)
	case *ast.IndexExpr:
		// Row argument like A[i]: a read of that row.
		return b.indexAccess(x, st, false)
	case *ast.Ident:
		sym := b.d.info.Ref[x]
		if sym != nil && (sym.IsArray() || (sym.Type != nil && sym.Type.IsPtr())) {
			st.Reads = append(st.Reads, poly.Access{Array: x.Name})
		}
		return true
	default:
		return b.expr(arg, st, false)
	}
}
