package scop

import (
	"strings"
	"testing"

	"purec/internal/ast"
	"purec/internal/parser"
	"purec/internal/purity"
	"purec/internal/sema"
)

func detect(t *testing.T, src string) (*Result, *sema.Info) {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	pres := purity.Check(info)
	if err := pres.Err(); err != nil {
		t.Fatalf("purity: %v", err)
	}
	return Detect(info, pres), info
}

const matmulSrc = `
float **A, **Bt, **C;
int n;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

int main(void) {
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], n);
    return 0;
}
`

func TestMatmulSCoPDetected(t *testing.T) {
	res, _ := detect(t, matmulSrc)
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	// The dot() reduction loop itself writes scalar res, so only main's
	// nest qualifies.
	var sc *SCoP
	for _, s := range res.SCoPs {
		if s.Func.Name == "main" {
			sc = s
		}
	}
	if sc == nil {
		t.Fatalf("main SCoP not found; rejections: %v", res.Rejections)
	}
	if len(sc.Loops) != 2 || sc.Loops[0].Iter != "i" || sc.Loops[1].Iter != "j" {
		t.Fatalf("loops: %+v", sc.Loops)
	}
	if len(sc.PureCalls) != 1 || sc.PureCalls[0].Fun.Name != "dot" {
		t.Fatalf("pure calls: %v", sc.PureCalls)
	}
	if len(sc.Nest.Params) != 1 || sc.Nest.Params[0] != "n" {
		t.Fatalf("params: %v", sc.Nest.Params)
	}
	// write access C[i][j] must be recorded
	st := sc.Nest.Stmts[0]
	if len(st.Writes) != 1 || st.Writes[0].Array != "C" || len(st.Writes[0].Subs) != 2 {
		t.Fatalf("writes: %v", st.Writes)
	}
}

func TestImpureCallRejected(t *testing.T) {
	res, _ := detect(t, `
float **C;
int n;
float work(float x) { return x + 1.0f; }
int main(void) {
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            C[i][j] = work(1.0f);
    return 0;
}
`)
	if len(res.SCoPs) != 0 {
		t.Fatalf("impure call must prevent SCoP detection")
	}
	found := false
	for _, r := range res.Rejections {
		if strings.Contains(r, "non-pure function work") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing rejection reason: %v", res.Rejections)
	}
}

// Listing 5: array passed to a pure function while written in the nest.
func TestListing5Violation(t *testing.T) {
	res, _ := detect(t, `
pure int func(pure int* a, int idx) {
    return a[idx - 1] + a[idx];
}
int arr[100];
int main(void) {
    for (int i = 1; i < 100; i++)
        arr[i] = func((pure int*)arr, i);
    return 0;
}
`)
	if len(res.Errors) == 0 {
		t.Fatal("expected Listing-5 error")
	}
	if !strings.Contains(res.Errors[0].Error(), "assigned in the same loop nest") {
		t.Fatalf("error: %v", res.Errors[0])
	}
	if len(res.SCoPs) != 0 {
		t.Fatal("violating nest must not be accepted as a SCoP")
	}
}

// Listing 6: the alias deceives the pass — documented limitation: the
// check compares names only, so the aliased write is NOT detected.
func TestListing6AliasLimitation(t *testing.T) {
	res, _ := detect(t, `
pure int func(pure int* a, int idx) {
    return a[idx - 1] + a[idx];
}
int arr[100];
int* alias;
int main(void) {
    for (int i = 1; i < 100; i++)
        alias[i] = func((pure int*)arr, i);
    return 0;
}
`)
	if len(res.Errors) != 0 {
		t.Fatalf("alias is a documented blind spot; got errors: %v", res.Errors)
	}
	if len(res.SCoPs) != 1 {
		t.Fatalf("aliased nest is (incorrectly but per paper) accepted: %v", res.Rejections)
	}
}

func TestNonAffineBoundRejected(t *testing.T) {
	res, _ := detect(t, `
float **C;
int n;
pure float f(float x) { return x; }
int main(void) {
    for (int i = 0; i < n * n; ++i)
        C[0][i] = f(1.0f);
    for (int i = 0; i < n; i += 2)
        C[1][i] = f(2.0f);
    return 0;
}
`)
	// n*n is affine-rejected? n*n is param*param → not affine.
	if len(res.SCoPs) != 0 {
		t.Fatalf("unexpected SCoPs: %d", len(res.SCoPs))
	}
}

func TestInnerSCoPFoundInsideImperfectLoop(t *testing.T) {
	res, _ := detect(t, `
float **A, **B;
int n;
pure float avg(pure float* up, pure float* mid, pure float* down, int j) {
    return 0.25f * (up[j] + mid[j - 1] + mid[j + 1] + down[j]);
}
void swap(void) { }
int main(void) {
    for (int t = 0; t < 100; t++) {
        for (int i = 1; i < n - 1; i++)
            for (int j = 1; j < n - 1; j++)
                B[i][j] = avg((pure float*)A[i - 1], (pure float*)A[i], (pure float*)A[i + 1], j);
        swap();
    }
    return 0;
}
`)
	if len(res.SCoPs) != 1 {
		t.Fatalf("SCoPs: %d (rejections %v)", len(res.SCoPs), res.Rejections)
	}
	sc := res.SCoPs[0]
	if len(sc.Loops) != 2 || sc.Loops[0].Iter != "i" {
		t.Fatalf("inner nest loops: %+v", sc.Loops)
	}
}

func TestMarkPragmas(t *testing.T) {
	res, info := detect(t, matmulSrc)
	var sc *SCoP
	for _, s := range res.SCoPs {
		if s.Func.Name == "main" {
			sc = s
		}
	}
	MarkPragmas([]*SCoP{sc})
	out := ast.Print(info.File)
	if !strings.Contains(out, "#pragma scop") || !strings.Contains(out, "#pragma endscop") {
		t.Fatalf("pragmas missing:\n%s", out)
	}
	i := strings.Index(out, "#pragma scop")
	j := strings.Index(out, "for (int i = 0; i < n")
	k := strings.Index(out, "#pragma endscop")
	if !(i < j && j < k) {
		t.Fatalf("pragma order wrong:\n%s", out)
	}
	// The marked source must still parse.
	if _, err := parser.Parse("marked.c", out); err != nil {
		t.Fatalf("marked source does not reparse: %v", err)
	}
}

func TestSubstituteAndRestoreCalls(t *testing.T) {
	res, info := detect(t, matmulSrc)
	var sc *SCoP
	for _, s := range res.SCoPs {
		if s.Func.Name == "main" {
			sc = s
		}
	}
	subs := SubstituteCalls(sc)
	if len(subs) != 1 || !strings.HasPrefix(subs[0].Name, "tmpConst_dot_") {
		t.Fatalf("subs: %+v", subs)
	}
	out := ast.Print(info.File)
	if !strings.Contains(out, "tmpConst_dot_0") {
		t.Fatalf("substituted source:\n%s", out)
	}
	if strings.Contains(out, "dot((pure float*)A") {
		t.Fatal("call must be hidden during polyhedral stage")
	}
	RestoreCalls(sc, subs)
	out2 := ast.Print(info.File)
	if strings.Contains(out2, "tmpConst_") {
		t.Fatalf("restore failed:\n%s", out2)
	}
	if !strings.Contains(out2, "dot((pure float*)A[i]") {
		t.Fatalf("call not restored:\n%s", out2)
	}
}

func TestIsPlaceholder(t *testing.T) {
	if !IsPlaceholder("tmpConst_dot_0") || IsPlaceholder("dot") {
		t.Fatal("IsPlaceholder misclassifies")
	}
}

func TestScalarWriteCreatesSerializingAccess(t *testing.T) {
	res, _ := detect(t, `
int n;
float s;
float **A;
pure float f(float x) { return x * 2.0f; }
int main(void) {
    for (int i = 0; i < n; ++i)
        s = s + f(A[0][i]);
    return 0;
}
`)
	if len(res.SCoPs) != 1 {
		t.Fatalf("SCoPs: %d (%v)", len(res.SCoPs), res.Rejections)
	}
	st := res.SCoPs[0].Nest.Stmts[0]
	foundScalar := false
	for _, w := range st.Writes {
		if w.Array == "scalar:s" {
			foundScalar = true
		}
	}
	if !foundScalar {
		t.Fatalf("scalar write access missing: %v", st.Writes)
	}
}

// ----------------------------------------------------------------------------
// Reduction recognition (PR 3)

func reductionsOf(t *testing.T, src string) ([]Reduction, *Result) {
	t.Helper()
	res, _ := detect(t, src)
	if len(res.Errors) > 0 {
		t.Fatalf("errors: %v", res.Errors)
	}
	if len(res.SCoPs) != 1 {
		t.Fatalf("SCoPs: %d (%v)", len(res.SCoPs), res.Rejections)
	}
	return res.SCoPs[0].Reductions, res
}

func TestReductionRecognizedForEveryOp(t *testing.T) {
	cases := []struct {
		stmt string
		op   string
	}{
		{"s += f(i)", "+"},
		{"s -= f(i)", "-"},
		{"s = s - f(i)", "-"},
		{"s *= f(i)", "*"},
		{"s &= f(i)", "&"},
		{"s |= f(i)", "|"},
		{"s ^= f(i)", "^"},
	}
	for _, c := range cases {
		src := `
int n;
pure int f(int x) { return x + 1; }
int main(void) {
    int s = 0;
    for (int i = 0; i < n; ++i)
        ` + c.stmt + `;
    return s;
}
`
		reds, res := reductionsOf(t, src)
		if len(reds) != 1 || reds[0].Var != "s" || reds[0].ClauseOp() != c.op {
			t.Fatalf("%s: reductions = %v", c.stmt, reds)
		}
		// The tagged accesses must appear on the statement.
		st := res.SCoPs[0].Nest.Stmts[0]
		for _, a := range st.Writes {
			if a.Array == "scalar:s" && !a.Reduction {
				t.Fatalf("%s: scalar write not tagged as reduction", c.stmt)
			}
		}
	}
}

func TestReductionNotRecognized(t *testing.T) {
	cases := []struct {
		name string
		body string
		decl string
	}{
		{"accumulator read elsewhere", "s += f(i); t = s + 1", "int s = 0; int t = 0;"},
		{"accumulator in own rhs", "s += s + f(i)", "int s = 0;"},
		{"plain assignment", "s = s + f(i)", "int s = 0;"},
		{"plain subtraction, right-anchored", "s = f(i) - s", "int s = 0;"},
		{"two updates of one accumulator", "s += f(i); s += 1", "int s = 0;"},
	}
	for _, c := range cases {
		src := `
int n;
pure int f(int x) { return x + 1; }
int main(void) {
    ` + c.decl + `
    for (int i = 0; i < n; ++i) {
        ` + strings.ReplaceAll(c.body, "; ", ";\n        ") + `;
    }
    return 0;
}
`
		res, _ := detect(t, src)
		if len(res.SCoPs) != 1 {
			t.Fatalf("%s: SCoPs: %d (%v)", c.name, len(res.SCoPs), res.Rejections)
		}
		if n := len(res.SCoPs[0].Reductions); n != 0 {
			t.Fatalf("%s: recognized %d reductions, want 0", c.name, n)
		}
	}
}

func TestReductionGlobalAccumulatorNotRecognized(t *testing.T) {
	// Globals cannot be privatized through the frame clone, so they stay
	// ordinary serializing scalar writes.
	res, _ := detect(t, `
int n;
int g;
pure int f(int x) { return x + 1; }
int main(void) {
    for (int i = 0; i < n; ++i)
        g += f(i);
    return g;
}
`)
	if len(res.SCoPs) != 1 {
		t.Fatalf("SCoPs: %d (%v)", len(res.SCoPs), res.Rejections)
	}
	if len(res.SCoPs[0].Reductions) != 0 {
		t.Fatalf("global accumulator must not be a reduction: %v", res.SCoPs[0].Reductions)
	}
}

func TestFloatReductionOnlyAddMul(t *testing.T) {
	reds, _ := reductionsOf(t, `
int n;
pure float f(float x) { return x * 2.0f; }
float **A;
int main(void) {
    float s = 0.0f;
    for (int i = 0; i < n; ++i)
        s += f(A[0][i]);
    return (int)s;
}
`)
	if len(reds) != 1 || reds[0].ClauseOp() != "+" {
		t.Fatalf("float sum: %v", reds)
	}
}

func TestTwoIndependentReductions(t *testing.T) {
	reds, _ := reductionsOf(t, `
int n;
pure int f(int x) { return x + 1; }
int main(void) {
    int s = 0;
    int p = 1;
    for (int i = 0; i < n; ++i) {
        s += f(i);
        p *= 2;
    }
    return s + p;
}
`)
	if len(reds) != 2 {
		t.Fatalf("want 2 reductions, got %v", reds)
	}
}

func TestMinMaxIfPatternRecognized(t *testing.T) {
	src := `
int a[100];
int main(void) {
    int m = 1 << 30;
    for (int i = 0; i < 100; i++)
        if (a[i] < m) m = a[i];
    return m;
}
`
	res, _ := detect(t, src)
	if len(res.SCoPs) != 1 {
		t.Fatalf("want 1 SCoP, got %d (rejections: %v)", len(res.SCoPs), res.Rejections)
	}
	sc := res.SCoPs[0]
	if len(sc.Reductions) != 1 || sc.Reductions[0].Var != "m" || sc.Reductions[0].ClauseOp() != "min" {
		t.Fatalf("reductions = %+v, want min:m", sc.Reductions)
	}
	// The accumulator accesses must be reduction-tagged so dependence
	// analysis ignores them.
	tagged := false
	for _, st := range sc.Nest.Stmts {
		for _, a := range st.Accesses() {
			if a.Array == "scalar:m" && a.Reduction {
				tagged = true
			}
		}
	}
	if !tagged {
		t.Fatal("scalar:m accesses are not reduction-tagged")
	}
}

func TestMinMaxTernaryMaxRecognized(t *testing.T) {
	src := `
int a[100];
int main(void) {
    int m = 0;
    for (int i = 0; i < 100; i++)
        m = a[i] > m ? a[i] : m;
    return m;
}
`
	res, _ := detect(t, src)
	if len(res.SCoPs) != 1 {
		t.Fatalf("want 1 SCoP, got %d (rejections: %v)", len(res.SCoPs), res.Rejections)
	}
	sc := res.SCoPs[0]
	if len(sc.Reductions) != 1 || sc.Reductions[0].ClauseOp() != "max" {
		t.Fatalf("reductions = %+v, want max:m", sc.Reductions)
	}
}

func TestNonCanonicalIfStillRejected(t *testing.T) {
	// A general conditional is still outside the SCoP grammar.
	src := `
int a[100], b[100];
int main(void) {
    for (int i = 0; i < 100; i++)
        if (a[i] > 0) b[i] = 1;
    return 0;
}
`
	res, _ := detect(t, src)
	if len(res.SCoPs) != 0 {
		t.Fatalf("general conditional must not form a SCoP, got %d", len(res.SCoPs))
	}
}
