package scop

import (
	"testing"

	"purec/internal/token"
)

// findNest returns the SCoP whose outer loop iterates the given
// variable, for sources with several nests.
func findNestByIter(res *Result, iter string) *SCoP {
	for _, sc := range res.SCoPs {
		if len(sc.Loops) > 0 && sc.Loops[0].Iter == iter {
			return sc
		}
	}
	return nil
}

func TestArrayReductionRecognized(t *testing.T) {
	cases := []struct {
		name   string
		update string
		op     token.Kind
	}{
		{"increment", "hist[data[i]]++;", token.ADD},
		{"decrement", "hist[data[i]]--;", token.ADD},
		{"pre_increment", "++hist[data[i]];", token.ADD},
		{"compound_add", "hist[data[i]] += 2;", token.ADD},
		{"compound_mul", "hist[data[i]] *= 3;", token.MUL},
		{"compound_and", "hist[data[i]] &= 6;", token.AND},
		{"compound_or", "hist[data[i]] |= 4;", token.OR},
		{"compound_xor", "hist[data[i]] ^= 5;", token.XOR},
	}
	for _, c := range cases {
		src := `
int data[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        ` + c.update + `
    return hist[0];
}
`
		res, _ := detect(t, src)
		sc := findNestByIter(res, "i")
		if sc == nil {
			t.Fatalf("%s: nest not detected (rejections: %v)", c.name, res.Rejections)
		}
		if len(sc.Reductions) != 1 {
			t.Fatalf("%s: reductions = %+v, want one", c.name, sc.Reductions)
		}
		r := sc.Reductions[0]
		if !r.IsArray || r.Var != "hist" || r.Op != c.op {
			t.Errorf("%s: got %+v, want array hist op %v", c.name, r, c.op)
		}
		if r.ClauseVar() != "hist[]" {
			t.Errorf("%s: ClauseVar = %q, want hist[]", c.name, r.ClauseVar())
		}
		// The star accesses of hist must be reduction-tagged so the
		// dependence analysis keeps the loop parallel.
		for _, st := range sc.Nest.Stmts {
			for _, a := range st.Accesses() {
				if a.Array == "hist" && !a.Reduction {
					t.Errorf("%s: access %v of hist is not reduction-tagged", c.name, a)
				}
			}
		}
	}
}

func TestArrayReductionMinMaxRecognized(t *testing.T) {
	cases := []struct {
		name   string
		update string
		op     token.Kind
	}{
		{"min_if", "if (data[i] < lo[bin[i]]) lo[bin[i]] = data[i];", token.LSS},
		{"max_if", "if (data[i] > lo[bin[i]]) lo[bin[i]] = data[i];", token.GTR},
		{"min_ternary", "lo[bin[i]] = data[i] < lo[bin[i]] ? data[i] : lo[bin[i]];", token.LSS},
	}
	for _, c := range cases {
		src := `
int data[100], bin[100];
int main(void) {
    int lo[8];
    for (int i = 0; i < 100; i++)
        ` + c.update + `
    return lo[0];
}
`
		res, _ := detect(t, src)
		sc := findNestByIter(res, "i")
		if sc == nil {
			t.Fatalf("%s: nest not detected (rejections: %v)", c.name, res.Rejections)
		}
		if len(sc.Reductions) != 1 || !sc.Reductions[0].IsArray ||
			sc.Reductions[0].Var != "lo" || sc.Reductions[0].Op != c.op {
			t.Errorf("%s: reductions = %+v", c.name, sc.Reductions)
		}
	}
}

func TestArrayReductionNotRecognized(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"global_array", `
int data[100];
int hist[16];
int main(void) {
    for (int i = 0; i < 100; i++)
        hist[data[i]]++;
    return 0;
}
`},
		{"read_elsewhere", `
int data[100];
int main(void) {
    int hist[16];
    int last = 0;
    for (int i = 0; i < 100; i++) {
        hist[data[i]]++;
        last = hist[0];
    }
    return last;
}
`},
		{"mixed_ops", `
int data[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++) {
        hist[data[i]]++;
        hist[data[i]] *= 2;
    }
    return hist[0];
}
`},
		{"near_miss_plain_assign", `
int a[100], b[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        hist[a[i]] = hist[b[i]] + 1;
    return hist[0];
}
`},
		// The compound forms below read the accumulator array beyond
		// the target's own read-modify-write: wrongly recognizing them
		// dissolves a real dependence and miscompiles the nest
		// (workers would read the identity-filled private copy where
		// the serial loop reads the evolving shared array).
		{"compound_reads_other_subscript", `
int a[100], b[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        hist[a[i]] += hist[b[i]];
    return hist[0];
}
`},
		{"compound_reads_constant_cell", `
int a[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++)
        hist[a[i]] += hist[0];
    return hist[0];
}
`},
		{"subscript_reads_accumulator", `
int main(void) {
    int hist[16];
    for (int i = 0; i < 16; i++)
        hist[hist[i]]++;
    return hist[0];
}
`},
	}
	for _, c := range cases {
		res, _ := detect(t, c.src)
		sc := findNestByIter(res, "i")
		if sc == nil {
			t.Fatalf("%s: nest not detected at all (rejections: %v) — star accesses should keep it a SCoP", c.name, res.Rejections)
		}
		for _, r := range sc.Reductions {
			if r.IsArray {
				t.Errorf("%s: array reduction wrongly recognized: %+v", c.name, r)
			}
		}
	}
}

func TestArrayReductionSubscriptReadsStayAffine(t *testing.T) {
	// The gather subscript's own read (data[i]) must be recorded as an
	// ordinary affine access — it participates in dependence analysis
	// (a write to data elsewhere in the nest must still serialize).
	src := `
int data[100];
int main(void) {
    int hist[16];
    for (int i = 0; i < 100; i++) {
        hist[data[i]]++;
        data[i] = 0;
    }
    return hist[0];
}
`
	res, _ := detect(t, src)
	sc := findNestByIter(res, "i")
	if sc == nil {
		t.Fatalf("nest not detected (rejections: %v)", res.Rejections)
	}
	foundAffineRead := false
	for _, st := range sc.Nest.Stmts {
		for _, a := range st.Reads {
			if a.Array == "data" && !a.Star && len(a.Subs) == 1 {
				foundAffineRead = true
			}
		}
	}
	if !foundAffineRead {
		t.Error("affine read of data[i] not recorded for the gather subscript")
	}
}
