// Package interp is a boxed-value, tree-walking interpreter for checked
// mini-C programs. It executes everything sequentially, serving as the
// semantic oracle: the closure compiler (internal/comp) with any backend
// and any team size must produce the same observable results. Tests
// compare the two on the paper's applications and on generated programs.
//
// OpenMP pragmas have no scheduling effect here, but parallel-for
// reduction clauses are validated when encountered: each reduction(op:s)
// must name a scalar accumulator updated by a matching `s op= expr`
// inside the annotated loop, so a malformed pragma fails loudly in the
// oracle instead of being silently ignored. Execution of the loop itself
// stays sequential — the oracle defines the serial accumulation order,
// which integer reductions must match bit-for-bit on every backend and
// team size (floats are only guaranteed to match on inline/serial runs;
// parallel float reductions follow the runtime's fixed-combine-order
// determinism contract instead).
package interp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"purec/internal/ast"
	"purec/internal/mem"
	"purec/internal/rt"
	"purec/internal/sema"
	"purec/internal/token"
	"purec/internal/types"
)

// Value is a boxed runtime value.
type Value struct {
	K types.Kind // Int, Float or Ptr (Void for none)
	I int64
	F float64
	P mem.Pointer
}

// IntV boxes an int.
func IntV(v int64) Value { return Value{K: types.Int, I: v} }

// FloatV boxes a float.
func FloatV(v float64) Value { return Value{K: types.Float, F: v} }

// PtrV boxes a pointer.
func PtrV(p mem.Pointer) Value { return Value{K: types.Ptr, P: p} }

// AsFloat converts the value to float64.
func (v Value) AsFloat() float64 {
	if v.K == types.Float {
		return v.F
	}
	return float64(v.I)
}

// AsInt converts the value to int64 (C truncation).
func (v Value) AsInt() int64 {
	if v.K == types.Float {
		return int64(v.F)
	}
	return v.I
}

// Truthy reports C truth.
func (v Value) Truthy() bool {
	switch v.K {
	case types.Float:
		return v.F != 0
	case types.Ptr:
		return !v.P.IsNull()
	default:
		return v.I != 0
	}
}

// Interp executes a checked file.
type Interp struct {
	info    *sema.Info
	globals map[*sema.Symbol]*cell
	heap    mem.Heap
	stdout  io.Writer
	rand    uint64
	// checkedPragmas memoizes reduction-pragma validation per pragma
	// node ("" = valid; otherwise the failure message).
	checkedPragmas map[*ast.PragmaStmt]string
}

// cell is one scalar storage location or an array/struct segment handle.
type cell struct {
	v   Value
	sym *sema.Symbol
}

type frame struct {
	vars map[*sema.Symbol]*cell
}

type ctrlKind int

const (
	ctrlNext ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind ctrlKind
	val  Value
}

// New loads a program into a fresh interpreter.
func New(info *sema.Info, stdout io.Writer) (*Interp, error) {
	if stdout == nil {
		stdout = io.Discard
	}
	in := &Interp{info: info, globals: map[*sema.Symbol]*cell{}, stdout: stdout}
	if err := in.Reset(); err != nil {
		return nil, err
	}
	return in, nil
}

// Reset reinitializes globals.
func (in *Interp) Reset() error {
	in.heap.Reset()
	for _, g := range in.info.Globals {
		c := &cell{sym: g}
		if g.IsArray() {
			cells := 1
			for _, d := range g.Dims {
				cells *= d
			}
			kind := cellKind(g.Type.BaseElem())
			c.v = PtrV(mem.Pointer{Seg: mem.NewSegment(kind, cells, "global "+g.Name)})
		} else if g.Decl != nil && g.Decl.Init != nil {
			v, ok := sema.ConstInt(g.Decl.Init)
			if ok {
				if g.Type.Kind == types.Float {
					c.v = FloatV(float64(v))
				} else {
					c.v = IntV(v)
				}
			} else if fl, okf := g.Decl.Init.(*ast.FloatLit); okf {
				c.v = FloatV(fl.Value)
			} else {
				return fmt.Errorf("global %s: non-constant initializer", g.Name)
			}
		} else {
			c.v = zeroOf(g.Type)
		}
		in.globals[g] = c
	}
	return nil
}

func zeroOf(t *types.Type) Value {
	switch t.Kind {
	case types.Float:
		return FloatV(0)
	case types.Ptr:
		return PtrV(mem.Pointer{})
	default:
		return IntV(0)
	}
}

func cellKind(t *types.Type) mem.CellKind {
	switch t.Kind {
	case types.Float:
		return mem.CellFloat
	case types.Ptr:
		return mem.CellPtr
	case types.Struct:
		return mem.CellMixed
	default:
		return mem.CellInt
	}
}

// RunMain executes main() and returns its int result.
func (in *Interp) RunMain() (ret int64, err error) {
	v, err := in.Call("main")
	if err != nil {
		return 0, err
	}
	return v.AsInt(), nil
}

// Call executes a named function with boxed arguments.
func (in *Interp) Call(name string, args ...Value) (v Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("interp runtime error: %v", r)
		}
	}()
	v, _ = in.call(name, args)
	return v, nil
}

// GlobalPtr returns a global pointer/array value for verification.
func (in *Interp) GlobalPtr(name string) (mem.Pointer, error) {
	g, ok := in.info.GlobalMap[name]
	if !ok {
		return mem.Pointer{}, fmt.Errorf("no global %s", name)
	}
	return in.globals[g].v.P, nil
}

// GlobalValue returns a global scalar value for verification.
func (in *Interp) GlobalValue(name string) (Value, error) {
	g, ok := in.info.GlobalMap[name]
	if !ok {
		return Value{}, fmt.Errorf("no global %s", name)
	}
	return in.globals[g].v, nil
}

func (in *Interp) call(name string, args []Value) (Value, ctrl) {
	fd := in.info.File.LookupFunc(name)
	if fd == nil || fd.Body == nil {
		panic(fmt.Sprintf("call of undefined function %s", name))
	}
	fr := &frame{vars: map[*sema.Symbol]*cell{}}
	// Bind parameters: FuncLocals lists params first in order.
	locals := in.info.FuncLocals[name]
	pi := 0
	for _, sym := range locals {
		if sym.Kind != sema.SymParam {
			continue
		}
		c := &cell{sym: sym}
		if pi < len(args) {
			c.v = args[pi]
		} else {
			c.v = zeroOf(sym.Type)
		}
		pi++
		fr.vars[sym] = c
	}
	c := in.stmts(fd.Body.List, fr)
	if c.kind == ctrlReturn {
		return c.val, ctrl{}
	}
	return Value{}, ctrl{}
}

func (in *Interp) stmts(list []ast.Stmt, fr *frame) ctrl {
	for i, s := range list {
		if pr, ok := s.(*ast.PragmaStmt); ok {
			if i+1 < len(list) {
				if f, ok := list[i+1].(*ast.ForStmt); ok {
					in.checkReductionPragma(pr, f)
				}
			}
		}
		if c := in.stmt(s, fr); c.kind != ctrlNext {
			return c
		}
	}
	return ctrl{}
}

// checkReductionPragma validates the reduction clauses of an OpenMP
// parallel-for pragma against the annotated loop: every named
// accumulator must be a scalar (non-array, non-pointer) variable updated
// by a compound assignment with the clause's operator somewhere in the
// loop body. The loop then executes sequentially like everything else.
//
// The check only applies to pragmas the compiler honors (omp parallel
// for) and only to operators that map onto compound assignments;
// clauses like reduction(max:m) are outside the recognized grammar and
// skipped, matching the compiler's serial fallback. The per-pragma
// result is memoized so hot loops pay one AST walk, not one per
// execution.
func (in *Interp) checkReductionPragma(pr *ast.PragmaStmt, f *ast.ForStmt) {
	if done, seen := in.checkedPragmas[pr]; seen {
		if done != "" {
			panic(done)
		}
		return
	}
	msg := reductionPragmaError(in.info, pr, f)
	if in.checkedPragmas == nil {
		in.checkedPragmas = map[*ast.PragmaStmt]string{}
	}
	in.checkedPragmas[pr] = msg
	if msg != "" {
		panic(msg)
	}
}

// reductionPragmaError returns the validation failure message, or ""
// when the pragma is fine (including pragmas the compiler ignores).
// The validated operator set is exactly the set the compiler
// parallelizes — clauses with other operators (/, %, ...) compile to
// serial execution there and are accepted here, so the oracle and the
// backend always agree on which programs run. The "-" clause accepts
// both the compound (s -= e) and plain (s = s - e) spellings,
// mirroring the compiler's resolver.
func reductionPragmaError(info *sema.Info, pr *ast.PragmaStmt, f *ast.ForStmt) string {
	if !strings.Contains(pr.Text, "omp") || !strings.Contains(pr.Text, "parallel") ||
		!strings.Contains(pr.Text, "for") {
		return ""
	}
	// Variables declared inside the loop shadow the clause name and are
	// automatically private; they must not satisfy the validation.
	inner := map[*ast.VarDecl]bool{}
	ast.Walk(f.Body, func(m ast.Node) bool {
		if d, ok := m.(*ast.DeclStmt); ok {
			for _, vd := range d.Decls {
				inner[vd] = true
			}
		}
		return true
	})
	for _, c := range rt.ParseOmpReductions(pr.Text) {
		if name, isArr := strings.CutSuffix(c.Var, "[]"); isArr {
			// Array-reduction clause (reduction(+:hist[])): the loop
			// must update an element of the named array with the
			// clause's operator — mirroring comp.resolveArrayReduction.
			// Accumulators the compiler cannot privatize (globals,
			// pointer bases) run serially there and are accepted here.
			if msg := arrayClauseError(info, c.Op, name, f, inner); msg != "" {
				return msg
			}
			continue
		}
		switch c.Op {
		case "+", "-", "*", "&", "|", "^":
			// the parallelized set: validate below
		case "min", "max":
			// min/max clauses bind a plain assignment inside a guarded
			// update; mirror the compiler's resolveMinMax validation.
			if msg := minMaxClauseError(info, c, f, inner); msg != "" {
				return msg
			}
			continue
		default:
			continue // compiler runs these clauses serially
		}
		found := false
		for _, as := range ast.Assignments(f.Body) {
			matches := false
			if bin, ok := as.Op.AssignBinOp(); ok && bin.String() == c.Op {
				matches = true
			} else if c.Op == "-" && as.Op == token.ASSIGN {
				// Plain form of the "-" clause: s = s - e.
				if bin, ok := ast.Unparen(as.RHS).(*ast.BinaryExpr); ok && bin.Op == token.SUB {
					if x, ok := ast.Unparen(bin.X).(*ast.Ident); ok && x.Name == c.Var {
						matches = true
					}
				}
			}
			if !matches {
				continue
			}
			id, ok := as.LHS.(*ast.Ident)
			if !ok || id.Name != c.Var {
				continue
			}
			sym := info.Ref[id]
			if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
				continue
			}
			if sym.IsArray() || sym.Type == nil || sym.Type.IsPtr() {
				return fmt.Sprintf("reduction(%s:%s) names a non-scalar accumulator", c.Op, c.Var)
			}
			found = true
			break
		}
		if !found {
			return fmt.Sprintf("reduction(%s:%s) has no matching '%s %s=' update in the annotated loop", c.Op, c.Var, c.Var, c.Op)
		}
	}
	return ""
}

// arrayClauseError validates an array-reduction clause
// reduction(op:A[]) exactly like the compiler's resolver: for the
// associative-commutative operators the loop body must contain a
// matching `A[e] op= v` update (the + clause also accepts
// `A[e]++`/`A[e]--`, both sum contributions); for min/max it must
// contain a plain assignment to an element of A. Operators outside
// the parallelized set are skipped (the compiler runs those clauses
// serially). Loop-local shadows of the array name never bind a
// clause.
func arrayClauseError(info *sema.Info, op, name string, f *ast.ForStmt, inner map[*ast.VarDecl]bool) string {
	var want token.Kind
	switch op {
	case "+":
		want = token.ADD
	case "-":
		want = token.SUB
	case "*":
		want = token.MUL
	case "&":
		want = token.AND
	case "|":
		want = token.OR
	case "^":
		want = token.XOR
	case "min", "max":
		// Mirror resolveArrayMinMax's "found": a plain assignment to an
		// element of the array binds the clause; whether it matches the
		// guarded pattern only decides parallel vs serial execution.
		for _, as := range ast.Assignments(f.Body) {
			if as.Op != token.ASSIGN {
				continue
			}
			if bindsArrayElement(info, as.LHS, name, inner) {
				return ""
			}
		}
		return fmt.Sprintf("reduction(%s:%s[]) has no matching '%s[...] =' update in the annotated loop", op, name, name)
	default:
		return "" // compiler runs these clauses serially
	}
	found := false
	ast.Walk(f.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignExpr:
			if bin, ok := x.Op.AssignBinOp(); ok && bin == want &&
				bindsArrayElement(info, x.LHS, name, inner) {
				found = true
			}
		case *ast.PostfixExpr:
			if want == token.ADD && (x.Op == token.INC || x.Op == token.DEC) &&
				bindsArrayElement(info, x.X, name, inner) {
				found = true
			}
		case *ast.UnaryExpr:
			if want == token.ADD && (x.Op == token.INC || x.Op == token.DEC) &&
				bindsArrayElement(info, x.X, name, inner) {
				found = true
			}
		}
		return !found
	})
	if !found {
		return fmt.Sprintf("reduction(%s:%s[]) has no matching '%s[...] %s=' update in the annotated loop", op, name, name, op)
	}
	return ""
}

// bindsArrayElement reports whether e is an index expression whose
// base is the named enclosing-scope variable.
func bindsArrayElement(info *sema.Info, e ast.Expr, name string, inner map[*ast.VarDecl]bool) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	base := ast.BaseIdent(ix)
	if base == nil || base.Name != name {
		return false
	}
	sym := info.Ref[base]
	return sym != nil && (sym.Decl == nil || !inner[sym.Decl])
}

// minMaxClauseError validates a reduction(min:m)/reduction(max:m)
// clause exactly like comp.resolveMinMax: the loop body must contain a
// plain assignment to the accumulator binding the enclosing scope (no
// assignment = malformed pragma), and a matching guarded update naming
// a non-scalar accumulator is an error. A body whose updates merely
// fail to match the pattern is accepted — the compiler runs that loop
// serially.
func minMaxClauseError(info *sema.Info, c rt.ReductionClause, f *ast.ForStmt, inner map[*ast.VarDecl]bool) string {
	found := false
	for _, as := range ast.Assignments(f.Body) {
		if as.Op != token.ASSIGN {
			continue
		}
		id, ok := as.LHS.(*ast.Ident)
		if !ok || id.Name != c.Var {
			continue
		}
		sym := info.Ref[id]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			continue
		}
		found = true
		break
	}
	if !found {
		return fmt.Sprintf("reduction(%s:%s) has no matching '%s =' update in the annotated loop", c.Op, c.Var, c.Var)
	}
	want := token.LSS
	if c.Op == "max" {
		want = token.GTR
	}
	msg := ""
	ast.Walk(f.Body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		m, _, dir, ok := ast.MinMaxUpdate(s)
		if !ok || m.Name != c.Var || dir != want {
			return true
		}
		sym := info.Ref[m]
		if sym == nil || (sym.Decl != nil && inner[sym.Decl]) {
			return true
		}
		if sym.IsArray() || sym.Type == nil || sym.Type.IsPtr() {
			msg = fmt.Sprintf("reduction(%s:%s) names a non-scalar accumulator", c.Op, c.Var)
		}
		return false
	})
	return msg
}

func (in *Interp) stmt(s ast.Stmt, fr *frame) ctrl {
	switch x := s.(type) {
	case *ast.DeclStmt:
		for _, d := range x.Decls {
			in.declare(d, fr)
		}
	case *ast.ExprStmt:
		in.eval(x.X, fr)
	case *ast.EmptyStmt, *ast.PragmaStmt:
	case *ast.BlockStmt:
		return in.stmts(x.List, fr)
	case *ast.IfStmt:
		if in.eval(x.Cond, fr).Truthy() {
			return in.stmt(x.Then, fr)
		}
		if x.Else != nil {
			return in.stmt(x.Else, fr)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			in.stmt(x.Init, fr)
		}
		for x.Cond == nil || in.eval(x.Cond, fr).Truthy() {
			c := in.stmt(x.Body, fr)
			if c.kind == ctrlBreak {
				break
			}
			if c.kind == ctrlReturn {
				return c
			}
			if x.Post != nil {
				in.eval(x.Post, fr)
			}
		}
	case *ast.WhileStmt:
		for in.eval(x.Cond, fr).Truthy() {
			c := in.stmt(x.Body, fr)
			if c.kind == ctrlBreak {
				break
			}
			if c.kind == ctrlReturn {
				return c
			}
		}
	case *ast.DoStmt:
		for {
			c := in.stmt(x.Body, fr)
			if c.kind == ctrlBreak {
				break
			}
			if c.kind == ctrlReturn {
				return c
			}
			if !in.eval(x.Cond, fr).Truthy() {
				break
			}
		}
	case *ast.ReturnStmt:
		var v Value
		if x.X != nil {
			v = in.eval(x.X, fr)
			// round float returns of float(4) functions like C
			if sig := in.sigOfReturn(x); sig != nil && sig.Ret.Kind == types.Float && sig.Ret.CSize == 4 {
				v = FloatV(float64(float32(v.AsFloat())))
			}
		}
		return ctrl{kind: ctrlReturn, val: v}
	case *ast.BreakStmt:
		return ctrl{kind: ctrlBreak}
	case *ast.ContinueStmt:
		return ctrl{kind: ctrlContinue}
	case *ast.SwitchStmt:
		return in.switchStmt(x, fr)
	}
	return ctrl{}
}

// sigOfReturn finds the signature of the function containing the return
// (by scanning declarations; cached lookups are not worth it here).
func (in *Interp) sigOfReturn(ret *ast.ReturnStmt) *sema.Sig {
	for _, d := range in.info.File.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		found := false
		ast.Walk(fd.Body, func(n ast.Node) bool {
			if n == ast.Node(ret) {
				found = true
			}
			return !found
		})
		if found {
			return in.info.Funcs[fd.Name]
		}
	}
	return nil
}

func (in *Interp) switchStmt(x *ast.SwitchStmt, fr *frame) ctrl {
	v := in.eval(x.Tag, fr).AsInt()
	start := -1
	for i, c := range x.Cases {
		if c.Value != nil {
			if cv, ok := sema.ConstInt(c.Value); ok && cv == v {
				start = i
				break
			}
		}
	}
	if start < 0 {
		for i, c := range x.Cases {
			if c.Value == nil {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return ctrl{}
	}
	for i := start; i < len(x.Cases); i++ {
		c := in.stmts(x.Cases[i].Body, fr)
		if c.kind == ctrlBreak {
			return ctrl{}
		}
		if c.kind == ctrlReturn || c.kind == ctrlContinue {
			return c
		}
	}
	return ctrl{}
}

func (in *Interp) declare(d *ast.VarDecl, fr *frame) {
	sym := in.symForDecl(d)
	if sym == nil {
		panic(fmt.Sprintf("no symbol for declaration of %s", d.Name))
	}
	c := &cell{sym: sym}
	if sym.IsArray() {
		cells := 1
		for _, dim := range sym.Dims {
			cells *= dim
		}
		c.v = PtrV(mem.Pointer{Seg: mem.NewSegment(cellKind(sym.Type.BaseElem()), cells, "arr "+d.Name)})
	} else if sym.Type.Kind == types.Struct {
		c.v = PtrV(mem.Pointer{Seg: mem.NewSegment(mem.CellMixed, structCellCount(sym.Type), "struct "+d.Name)})
	} else if d.Init != nil {
		c.v = in.convert(in.eval(d.Init, fr), sym.Type)
	} else {
		c.v = zeroOf(sym.Type)
	}
	fr.vars[sym] = c
}

func structCellCount(t *types.Type) int {
	n := 0
	for _, f := range t.Fields {
		n += f.Count
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (in *Interp) symForDecl(d *ast.VarDecl) *sema.Symbol {
	for _, syms := range in.info.FuncLocals {
		for _, s := range syms {
			if s.Decl == d {
				return s
			}
		}
	}
	return nil
}

// convert adapts a value to a declared type (C float rounding).
func (in *Interp) convert(v Value, t *types.Type) Value {
	switch t.Kind {
	case types.Float:
		f := v.AsFloat()
		if t.CSize == 4 {
			f = float64(float32(f))
		}
		return FloatV(f)
	case types.Int:
		return IntV(v.AsInt())
	case types.Ptr:
		if v.K != types.Ptr {
			if v.AsInt() == 0 {
				return PtrV(mem.Pointer{})
			}
			panic("non-pointer assigned to pointer")
		}
		return v
	}
	return v
}

// lvalue resolution: either a frame/global cell or a memory location.
type location struct {
	cell *cell
	ptr  mem.Pointer
	kind mem.CellKind
	t    *types.Type
}

func (in *Interp) lvalue(e ast.Expr, fr *frame) location {
	switch x := e.(type) {
	case *ast.Ident:
		sym := in.info.Ref[x]
		if sym == nil {
			panic("unresolved " + x.Name)
		}
		if c, ok := fr.vars[sym]; ok {
			return location{cell: c, t: sym.Type}
		}
		if c, ok := in.globals[sym]; ok {
			return location{cell: c, t: sym.Type}
		}
		panic("no storage for " + x.Name)
	case *ast.ParenExpr:
		return in.lvalue(x.X, fr)
	case *ast.IndexExpr:
		subs, base := collectSubs(x)
		if id, ok := base.(*ast.Ident); ok {
			sym := in.info.Ref[id]
			if sym != nil && sym.IsArray() && len(subs) == len(sym.Dims) {
				p := in.load(id, fr).P
				off := int64(0)
				stride := int64(1)
				for i := len(subs) - 1; i >= 0; i-- {
					off += in.eval(subs[i], fr).AsInt() * stride
					stride *= int64(sym.Dims[i])
				}
				et := sym.Type.BaseElem()
				return location{ptr: p.Add(off), kind: cellKind(et), t: et}
			}
		}
		bt := in.typeOf(x.X)
		p := in.eval(x.X, fr).P
		idx := in.eval(x.Index, fr).AsInt()
		stride := int64(1)
		if bt.Elem.Kind == types.Struct {
			stride = int64(structCellCount(bt.Elem))
		}
		return location{ptr: p.Add(idx * stride), kind: cellKind(bt.Elem), t: bt.Elem}
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			bt := in.typeOf(x.X)
			p := in.eval(x.X, fr).P
			return location{ptr: p, kind: cellKind(bt.Elem), t: bt.Elem}
		}
	case *ast.MemberExpr:
		st, fld := in.fieldOf(x)
		_ = st
		var base mem.Pointer
		if x.Arrow {
			base = in.eval(x.X, fr).P
		} else {
			base = in.structBase(x.X, fr)
		}
		return location{ptr: base.Add(int64(fld.Offset)), kind: cellKind(fld.Type), t: fld.Type}
	}
	panic(fmt.Sprintf("not an lvalue: %T", e))
}

func (in *Interp) structBase(e ast.Expr, fr *frame) mem.Pointer {
	switch x := e.(type) {
	case *ast.Ident:
		return in.load(x, fr).P
	case *ast.ParenExpr:
		return in.structBase(x.X, fr)
	case *ast.IndexExpr:
		loc := in.lvalue(x, fr)
		return loc.ptr
	case *ast.UnaryExpr:
		if x.Op == token.MUL {
			return in.eval(x.X, fr).P
		}
	case *ast.MemberExpr:
		_, fld := in.fieldOf(x)
		var base mem.Pointer
		if x.Arrow {
			base = in.eval(x.X, fr).P
		} else {
			base = in.structBase(x.X, fr)
		}
		return base.Add(int64(fld.Offset))
	}
	panic("unsupported struct base")
}

func (in *Interp) fieldOf(x *ast.MemberExpr) (*types.Type, types.Field) {
	bt := in.typeOf(x.X)
	st := bt
	if x.Arrow {
		st = bt.Elem
	}
	for _, f := range st.Fields {
		if f.Name == x.Name {
			return st, f
		}
	}
	panic("no field " + x.Name)
}

func (loc location) get() Value {
	if loc.cell != nil {
		return loc.cell.v
	}
	switch loc.kind {
	case mem.CellFloat:
		return FloatV(loc.ptr.LoadFloat())
	case mem.CellPtr:
		return PtrV(loc.ptr.LoadPtr())
	default:
		return IntV(loc.ptr.LoadInt())
	}
}

func (in *Interp) set(loc location, v Value) {
	if loc.cell != nil {
		loc.cell.v = in.convert(v, loc.t)
		return
	}
	switch loc.kind {
	case mem.CellFloat:
		f := v.AsFloat()
		if loc.t != nil && loc.t.CSize == 4 {
			f = float64(float32(f))
		}
		loc.ptr.StoreFloat(f)
	case mem.CellPtr:
		loc.ptr.StorePtr(v.P)
	default:
		loc.ptr.StoreInt(v.AsInt())
	}
}

func (in *Interp) typeOf(e ast.Expr) *types.Type {
	t := in.info.ExprType[e]
	if t == nil {
		panic("untyped expression")
	}
	return t
}

func (in *Interp) load(id *ast.Ident, fr *frame) Value {
	sym := in.info.Ref[id]
	if sym == nil {
		panic("unresolved " + id.Name)
	}
	if c, ok := fr.vars[sym]; ok {
		return c.v
	}
	if c, ok := in.globals[sym]; ok {
		return c.v
	}
	panic("no storage for " + id.Name)
}

func (in *Interp) eval(e ast.Expr, fr *frame) Value {
	switch x := e.(type) {
	case *ast.IntLit:
		return IntV(x.Value)
	case *ast.FloatLit:
		return FloatV(x.Value)
	case *ast.CharLit:
		return IntV(x.Value)
	case *ast.StringLit:
		seg := mem.NewSegment(mem.CellInt, len(x.Value)+1, "string")
		for i := 0; i < len(x.Value); i++ {
			seg.I[i] = int64(x.Value[i]) //lint:rawmem fresh segment sized len+1, i < len by the loop bound
		}
		return PtrV(mem.Pointer{Seg: seg})
	case *ast.Ident:
		return in.load(x, fr)
	case *ast.ParenExpr:
		return in.eval(x.X, fr)
	case *ast.BinaryExpr:
		return in.binary(x, fr)
	case *ast.UnaryExpr:
		return in.unary(x, fr)
	case *ast.PostfixExpr:
		loc := in.lvalue(x.X, fr)
		old := loc.get()
		d := int64(1)
		if x.Op == token.DEC {
			d = -1
		}
		in.set(loc, addValue(old, d, in.typeOf(x.X)))
		return old
	case *ast.AssignExpr:
		return in.assign(x, fr)
	case *ast.CondExpr:
		if in.eval(x.Cond, fr).Truthy() {
			return in.eval(x.Then, fr)
		}
		return in.eval(x.Else, fr)
	case *ast.CallExpr:
		return in.callExpr(x, fr)
	case *ast.IndexExpr:
		// partial array indexing yields a pointer
		subs, base := collectSubs(x)
		if id, ok := base.(*ast.Ident); ok {
			sym := in.info.Ref[id]
			if sym != nil && sym.IsArray() && len(subs) < len(sym.Dims) {
				p := in.load(id, fr).P
				stride := int64(1)
				for _, d := range sym.Dims[len(subs):] {
					stride *= int64(d)
				}
				off := int64(0)
				rowStride := stride
				for i := len(subs) - 1; i >= 0; i-- {
					off += in.eval(subs[i], fr).AsInt() * rowStride
					rowStride *= int64(sym.Dims[i])
				}
				return PtrV(p.Add(off))
			}
		}
		loc := in.lvalue(x, fr)
		return loc.get()
	case *ast.MemberExpr:
		_, fld := in.fieldOf(x)
		if fld.Count > 1 {
			// array field decays
			var base mem.Pointer
			if x.Arrow {
				base = in.eval(x.X, fr).P
			} else {
				base = in.structBase(x.X, fr)
			}
			return PtrV(base.Add(int64(fld.Offset)))
		}
		return in.lvalue(x, fr).get()
	case *ast.CastExpr:
		t := in.typeOf(x)
		// (T*)malloc(n)
		if call, ok := stripParens(x.X).(*ast.CallExpr); ok && call.Fun.Name == "malloc" && t.IsPtr() {
			bytes := in.eval(call.Args[0], fr).AsInt()
			elem := t.Elem
			var kind mem.CellKind
			cellBytes := int64(elem.CSize)
			if elem.Kind == types.Struct {
				kind = mem.CellMixed
				cellBytes = int64(elem.CSize) / int64(structCellCount(elem))
			} else {
				kind = cellKind(elem)
			}
			if cellBytes == 0 {
				cellBytes = 8
			}
			cells := bytes / cellBytes
			if bytes%cellBytes != 0 {
				cells++
			}
			return PtrV(in.heap.Malloc(kind, int(cells), "malloc"))
		}
		return in.convert(in.eval(x.X, fr), t)
	case *ast.SizeofExpr:
		if x.Type != nil {
			t, err := types.FromAST(x.Type, func(tag string) (*types.Type, error) {
				if st, ok := in.info.Structs[tag]; ok {
					return st, nil
				}
				return nil, fmt.Errorf("unknown struct %s", tag)
			})
			if err != nil {
				panic(err)
			}
			return IntV(int64(t.CSize))
		}
		return IntV(int64(in.typeOf(x.X).CSize))
	}
	panic(fmt.Sprintf("unsupported expression %T", e))
}

func addValue(v Value, d int64, t *types.Type) Value {
	switch v.K {
	case types.Float:
		return FloatV(v.F + float64(d))
	case types.Ptr:
		stride := int64(1)
		if t != nil && t.Elem != nil && t.Elem.Kind == types.Struct {
			stride = int64(structCellCount(t.Elem))
		}
		return PtrV(v.P.Add(d * stride))
	default:
		return IntV(v.I + d)
	}
}

func (in *Interp) binary(x *ast.BinaryExpr, fr *frame) Value {
	switch x.Op {
	case token.LAND:
		if !in.eval(x.X, fr).Truthy() {
			return IntV(0)
		}
		return IntV(b2i(in.eval(x.Y, fr).Truthy()))
	case token.LOR:
		if in.eval(x.X, fr).Truthy() {
			return IntV(1)
		}
		return IntV(b2i(in.eval(x.Y, fr).Truthy()))
	}
	a := in.eval(x.X, fr)
	b := in.eval(x.Y, fr)
	switch x.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return IntV(b2i(compare(a, b, x.Op)))
	}
	// pointer arithmetic
	ta, tb := in.typeOf(x.X), in.typeOf(x.Y)
	if ta.IsPtr() || tb.IsPtr() {
		switch {
		case ta.IsPtr() && tb.Kind == types.Int:
			stride := strideOf(ta)
			if x.Op == token.SUB {
				return PtrV(a.P.Add(-b.AsInt() * stride))
			}
			return PtrV(a.P.Add(b.AsInt() * stride))
		case tb.IsPtr() && ta.Kind == types.Int && x.Op == token.ADD:
			return PtrV(b.P.Add(a.AsInt() * strideOf(tb)))
		case ta.IsPtr() && tb.IsPtr() && x.Op == token.SUB:
			d, err := a.P.DiffChecked(b.P)
			if err != nil {
				panic(err)
			}
			return IntV(d / strideOf(ta))
		}
		panic("bad pointer arithmetic")
	}
	if a.K == types.Float || b.K == types.Float {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case token.ADD:
			return FloatV(af + bf)
		case token.SUB:
			return FloatV(af - bf)
		case token.MUL:
			return FloatV(af * bf)
		case token.QUO:
			return FloatV(af / bf)
		}
		panic("bad float op " + x.Op.String())
	}
	ai, bi := a.I, b.I
	switch x.Op {
	case token.ADD:
		return IntV(ai + bi)
	case token.SUB:
		return IntV(ai - bi)
	case token.MUL:
		return IntV(ai * bi)
	case token.QUO:
		if bi == 0 {
			panic("division by zero")
		}
		return IntV(ai / bi)
	case token.REM:
		if bi == 0 {
			panic("modulo by zero")
		}
		return IntV(ai % bi)
	case token.AND:
		return IntV(ai & bi)
	case token.OR:
		return IntV(ai | bi)
	case token.XOR:
		return IntV(ai ^ bi)
	case token.SHL:
		return IntV(ai << uint(bi))
	case token.SHR:
		return IntV(ai >> uint(bi))
	}
	panic("bad int op " + x.Op.String())
}

func strideOf(t *types.Type) int64 {
	if t.Elem != nil && t.Elem.Kind == types.Struct {
		return int64(structCellCount(t.Elem))
	}
	return 1
}

func compare(a, b Value, op token.Kind) bool {
	if a.K == types.Ptr || b.K == types.Ptr {
		switch op {
		case token.EQL:
			return a.P == b.P
		case token.NEQ:
			return a.P != b.P
		case token.LSS:
			return a.P.Off < b.P.Off
		case token.LEQ:
			return a.P.Off <= b.P.Off
		case token.GTR:
			return a.P.Off > b.P.Off
		default:
			return a.P.Off >= b.P.Off
		}
	}
	if a.K == types.Float || b.K == types.Float {
		af, bf := a.AsFloat(), b.AsFloat()
		switch op {
		case token.EQL:
			return af == bf
		case token.NEQ:
			return af != bf
		case token.LSS:
			return af < bf
		case token.LEQ:
			return af <= bf
		case token.GTR:
			return af > bf
		default:
			return af >= bf
		}
	}
	switch op {
	case token.EQL:
		return a.I == b.I
	case token.NEQ:
		return a.I != b.I
	case token.LSS:
		return a.I < b.I
	case token.LEQ:
		return a.I <= b.I
	case token.GTR:
		return a.I > b.I
	default:
		return a.I >= b.I
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) unary(x *ast.UnaryExpr, fr *frame) Value {
	switch x.Op {
	case token.SUB:
		v := in.eval(x.X, fr)
		if v.K == types.Float {
			return FloatV(-v.F)
		}
		return IntV(-v.I)
	case token.NOT:
		return IntV(b2i(!in.eval(x.X, fr).Truthy()))
	case token.TILDE:
		return IntV(^in.eval(x.X, fr).AsInt())
	case token.MUL:
		return in.lvalue(x, fr).get()
	case token.AND:
		loc := in.lvalue(x.X, fr)
		if loc.cell != nil {
			panic("address of register variable")
		}
		return PtrV(loc.ptr)
	case token.INC, token.DEC:
		loc := in.lvalue(x.X, fr)
		d := int64(1)
		if x.Op == token.DEC {
			d = -1
		}
		nv := addValue(loc.get(), d, in.typeOf(x.X))
		in.set(loc, nv)
		return nv
	}
	panic("bad unary " + x.Op.String())
}

func (in *Interp) assign(x *ast.AssignExpr, fr *frame) Value {
	loc := in.lvalue(x.LHS, fr)
	rhs := in.eval(x.RHS, fr)
	if bin, ok := x.Op.AssignBinOp(); ok {
		cur := loc.get()
		tl := in.typeOf(x.LHS)
		if tl.IsPtr() {
			d := rhs.AsInt() * strideOf(tl)
			if bin == token.SUB {
				d = -d
			}
			rhs = PtrV(cur.P.Add(d))
		} else if tl.Kind == types.Float || rhs.K == types.Float {
			a, b := cur.AsFloat(), rhs.AsFloat()
			switch bin {
			case token.ADD:
				rhs = FloatV(a + b)
			case token.SUB:
				rhs = FloatV(a - b)
			case token.MUL:
				rhs = FloatV(a * b)
			case token.QUO:
				rhs = FloatV(a / b)
			default:
				panic("bad float compound op")
			}
		} else {
			a, b := cur.I, rhs.AsInt()
			switch bin {
			case token.ADD:
				rhs = IntV(a + b)
			case token.SUB:
				rhs = IntV(a - b)
			case token.MUL:
				rhs = IntV(a * b)
			case token.QUO:
				if b == 0 {
					panic("division by zero")
				}
				rhs = IntV(a / b)
			case token.REM:
				if b == 0 {
					panic("modulo by zero")
				}
				rhs = IntV(a % b)
			case token.AND:
				rhs = IntV(a & b)
			case token.OR:
				rhs = IntV(a | b)
			case token.XOR:
				rhs = IntV(a ^ b)
			case token.SHL:
				rhs = IntV(a << uint(b))
			case token.SHR:
				rhs = IntV(a >> uint(b))
			}
		}
	}
	in.set(loc, rhs)
	return loc.get()
}

func (in *Interp) callExpr(x *ast.CallExpr, fr *frame) Value {
	name := x.Fun.Name
	if f, ok := mathUnary[name]; ok {
		return FloatV(f(in.eval(x.Args[0], fr).AsFloat()))
	}
	if f, ok := mathBinary[name]; ok {
		return FloatV(f(in.eval(x.Args[0], fr).AsFloat(), in.eval(x.Args[1], fr).AsFloat()))
	}
	switch name {
	case "abs":
		v := in.eval(x.Args[0], fr).AsInt()
		if v < 0 {
			v = -v
		}
		return IntV(v)
	case "floord":
		a, b := in.eval(x.Args[0], fr).AsInt(), in.eval(x.Args[1], fr).AsInt()
		q := a / b
		if (a%b != 0) && ((a < 0) != (b < 0)) {
			q--
		}
		return IntV(q)
	case "ceild":
		a, b := in.eval(x.Args[0], fr).AsInt(), in.eval(x.Args[1], fr).AsInt()
		q := a / b
		if (a%b != 0) && ((a < 0) == (b < 0)) {
			q++
		}
		return IntV(q)
	case "imin":
		a, b := in.eval(x.Args[0], fr).AsInt(), in.eval(x.Args[1], fr).AsInt()
		if a < b {
			return IntV(a)
		}
		return IntV(b)
	case "imax":
		a, b := in.eval(x.Args[0], fr).AsInt(), in.eval(x.Args[1], fr).AsInt()
		if a > b {
			return IntV(a)
		}
		return IntV(b)
	case "malloc":
		panic("malloc must be cast to its target pointer type")
	case "free":
		if err := in.heap.Free(in.eval(x.Args[0], fr).P); err != nil {
			panic(err)
		}
		return Value{}
	case "printf":
		in.printf(x, fr)
		return IntV(0)
	case "rand":
		in.rand = in.rand*6364136223846793005 + 1442695040888963407
		return IntV(int64((in.rand >> 33) & 0x7fffffff))
	case "srand":
		in.rand = uint64(in.eval(x.Args[0], fr).AsInt())
		return Value{}
	case "clock":
		return IntV(0)
	}
	// user function
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = in.eval(a, fr)
	}
	// convert args to parameter types
	if sig, ok := in.info.Funcs[name]; ok {
		for i := range args {
			if i < len(sig.Params) {
				args[i] = in.convert(args[i], sig.Params[i])
			}
		}
	}
	v, _ := in.call(name, args)
	return v
}

func (in *Interp) printf(x *ast.CallExpr, fr *frame) {
	lit, ok := stripParens(x.Args[0]).(*ast.StringLit)
	if !ok {
		panic("printf format must be a literal")
	}
	format := lit.Value
	var b strings.Builder
	ai := 1
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		for i < len(format) && strings.IndexByte("-+ 0123456789.l", format[i]) >= 0 {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++
		if verb == '%' {
			b.WriteByte('%')
			continue
		}
		v := in.eval(x.Args[ai], fr)
		ai++
		switch verb {
		case 'd', 'i', 'u':
			fmt.Fprintf(&b, "%d", v.AsInt())
		case 'x':
			fmt.Fprintf(&b, "%x", v.AsInt())
		case 'c':
			fmt.Fprintf(&b, "%c", rune(v.AsInt()))
		case 'f':
			fmt.Fprintf(&b, "%f", v.AsFloat())
		case 'g':
			fmt.Fprintf(&b, "%g", v.AsFloat())
		case 'e':
			fmt.Fprintf(&b, "%e", v.AsFloat())
		case 's':
			p := v.P
			if p.IsNull() {
				b.WriteString("(null)") // match the compiled backend
				break
			}
			if p.Seg.Freed() {
				// The poisoned backing slice would read as an empty
				// string and mask the use-after-free; trap it like any
				// other stale access.
				panic(fmt.Sprintf("use after free of %s", p.Seg.Name))
			}
			//lint:rawmem NUL scan bounded by len() on the same slice; freed checked above
			for off := p.Off; off < len(p.Seg.I) && p.Seg.I[off] != 0; off++ {
				b.WriteByte(byte(p.Seg.I[off])) //lint:rawmem same bounded scan
			}
		}
	}
	fmt.Fprint(in.stdout, b.String())
}

func collectSubs(e ast.Expr) ([]ast.Expr, ast.Expr) {
	var subs []ast.Expr
	cur := e
	for {
		ix, ok := cur.(*ast.IndexExpr)
		if !ok {
			return subs, cur
		}
		subs = append([]ast.Expr{ix.Index}, subs...)
		cur = ix.X
	}
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

var mathUnary = map[string]func(float64) float64{
	"sin": math.Sin, "cos": math.Cos, "tan": math.Tan,
	"asin": math.Asin, "acos": math.Acos, "atan": math.Atan,
	"exp": math.Exp, "log": math.Log, "log10": math.Log10,
	"sqrt": math.Sqrt, "fabs": math.Abs, "floor": math.Floor,
	"ceil": math.Ceil, "expf": math.Exp, "sqrtf": math.Sqrt,
	"fabsf": math.Abs,
}

var mathBinary = map[string]func(float64, float64) float64{
	"pow": math.Pow, "atan2": math.Atan2, "fmod": math.Mod,
	"fmin": math.Min, "fmax": math.Max,
}
