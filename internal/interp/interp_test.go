package interp

import (
	"bytes"
	"strings"
	"testing"

	"purec/internal/parser"
	"purec/internal/sema"
)

func run(t *testing.T, src string) int64 {
	t.Helper()
	f, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	in, err := New(info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	v, err := in.RunMain()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestBasics(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"int main(void) { return 41 + 1; }", 42},
		{"int main(void) { int s = 0; for (int i = 1; i <= 10; i++) s += i; return s; }", 55},
		{"int f(int n) { return n * n; } int main(void) { return f(7); }", 49},
		{"pure int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } int main(void) { return fib(10); }", 55},
		{"int main(void) { int a[5]; a[0] = 1; for (int i = 1; i < 5; i++) a[i] = a[i-1] * 2; return a[4]; }", 16},
		{"int main(void) { int* p = (int*)malloc(3 * sizeof(int)); p[2] = 9; int v = p[2]; free(p); return v; }", 9},
		{"int main(void) { double x = sqrt(81.0); return (int)x; }", 9},
		{"int main(void) { return sizeof(double) + sizeof(int); }", 12},
	}
	for _, c := range cases {
		if got := run(t, c.src); got != c.want {
			t.Errorf("got %d want %d for\n%s", got, c.want, c.src)
		}
	}
}

func TestGlobals(t *testing.T) {
	got := run(t, `
int g = 10;
float w;
int bump(void) { g++; return g; }
int main(void) { bump(); bump(); w = 2.5f; return g + (int)w; }
`)
	if got != 14 {
		t.Fatalf("got %d", got)
	}
}

func TestStructsAndPointers(t *testing.T) {
	got := run(t, `
struct pair { int a; int b; };
int main(void) {
    struct pair p;
    p.a = 3;
    p.b = 4;
    struct pair* q = (struct pair*)malloc(2 * sizeof(struct pair));
    q[1].a = 10;
    struct pair* r = q + 1;
    int v = p.a + p.b + r->a;
    free(q);
    return v;
}
`)
	if got != 17 {
		t.Fatalf("got %d", got)
	}
}

func TestPragmasIgnored(t *testing.T) {
	got := run(t, `
int main(void) {
    int s = 0;
#pragma omp parallel for
    for (int i = 0; i < 10; i++)
        s += i;
    return s;
}
`)
	if got != 45 {
		t.Fatalf("got %d", got)
	}
}

func TestPrintfOutput(t *testing.T) {
	f, err := parser.Parse("t.c", `int main(void) { printf("v=%d %s\n", 7, "ok"); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	in, err := New(info, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.RunMain(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "v=7 ok\n" {
		t.Fatalf("printf: %q", buf.String())
	}
}

func TestRuntimeErrorsTrapped(t *testing.T) {
	f, _ := parser.Parse("t.c", "int main(void) { int z = 0; return 3 / z; }")
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = in.RunMain()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("got %v", err)
	}
}

func TestFloat32StoreRounding(t *testing.T) {
	got := run(t, `
int main(void) {
    float f = 16777216.0f;
    f = f + 1.0f;
    if (f == 16777216.0f) return 1;
    return 0;
}
`)
	if got != 1 {
		t.Fatal("float32 store rounding not modeled")
	}
}

func TestReset(t *testing.T) {
	f, _ := parser.Parse("t.c", "int g; int main(void) { g++; return g; }")
	info, err := sema.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(info, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := in.RunMain()
	if err := in.Reset(); err != nil {
		t.Fatal(err)
	}
	v2, _ := in.RunMain()
	if v1 != 1 || v2 != 1 {
		t.Fatalf("reset: %d %d", v1, v2)
	}
}
