package apps

import "fmt"

// MemoSatSrc is the memoization scenario: a quantized variant of the
// satellite AOD retrieval in which every pixel falls into one of NCLASS
// precomputed atmosphere classes, so the per-pixel retrieval becomes a
// pure function of scalar arguments only — exactly the shape the
// memoization subsystem caches. With NPIX ≫ NCLASS the argument stream
// is massively repetitive: a memoizing build computes each class once
// and serves the remaining NPIX−NCLASS calls from the shared table,
// while a plain build pays the full iterative fit per pixel.
//
// Operationally this models a production retrieval service whose
// upstream quantizes raw spectra into discrete condition classes
// (cloud mask buckets, aerosol types): heavy traffic, few distinct
// inputs.
const MemoSatSrc = `
float *aod;

pure float retrieve(int cls, int nclass, int bands, int budget) {
    float ref = 0.05f + 0.9f * (float)cls / (float)nclass;
    float tau = 0.1f;
    for (int it = 0; it < budget; it++) {
        float err = 0.0f;
        for (int b = 0; b < bands; b++) {
            float w = 0.3f + 0.4f * (float)(b % 5) / 5.0f;
            float model = tau * w + (1.0f - tau) * 0.2f;
            float d = ref * w - model;
            if (d < 0.0f)
                d = -d;
            err += d;
        }
        err = err / (float)bands;
        if (err < 0.0005f)
            return tau;
        if (ref > tau)
            tau = tau + err * 0.05f;
        else
            tau = tau - err * 0.05f;
        if (tau < 0.0f)
            tau = 0.0f;
        if (tau > 5.0f)
            tau = 5.0f;
    }
    return tau;
}

void initmemo(void) {
    aod = (float*)malloc(NPIX * sizeof(float));
}

int run(void) {
    for (int p = 0; p < NPIX; p++)
        aod[p] = retrieve((p * 7919) % NCLASS, NCLASS, BANDS, MAXITERS);
    return 0;
}

int main(void) {
    initmemo();
    return run();
}
`

// MemoSatDefines injects the pixel count, class count, band count and
// iteration budget of the quantized retrieval.
func MemoSatDefines(npix, nclass, bands, maxiters int) map[string]string {
	return map[string]string{
		"NPIX":     fmt.Sprintf("%d", npix),
		"NCLASS":   fmt.Sprintf("%d", nclass),
		"BANDS":    fmt.Sprintf("%d", bands),
		"MAXITERS": fmt.Sprintf("%d", maxiters),
	}
}
