package apps

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"

	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/interp"
	"purec/internal/rt"
	"purec/internal/transform"
)

// build runs the full pipeline and executes main.
func build(t *testing.T, src string, defines map[string]string, cfg core.Config) *core.Result {
	t.Helper()
	cfg.Defines = defines
	if cfg.Transform.MinParallelTrip == 0 {
		// Test workloads are tiny; disable the profitability threshold.
		cfg.Transform.MinParallelTrip = -1
	}
	res, err := core.Build(src, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := res.Machine.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func maxRelDiff(a, b []float32) float64 {
	var worst float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		scale := math.Max(math.Abs(float64(a[i])), 1)
		if r := d / scale; r > worst {
			worst = r
		}
	}
	return worst
}

func flat(m [][]float32) []float32 {
	var out []float32
	for _, r := range m {
		out = append(out, r...)
	}
	return out
}

const tol = 1e-4

// --- Matrix multiplication ---

func TestMatmulPureMatchesReference(t *testing.T) {
	n := 20
	res := build(t, MatmulSrc, MatmulDefines(n), core.Config{Parallelize: true, TeamSize: 3})
	ptr, err := res.Machine.GlobalPtr("C")
	if err != nil {
		t.Fatal(err)
	}
	got := ReadMatrix(ptr, n)
	want := MatmulRef(n)
	if d := maxRelDiff(flat(got), flat(want)); d > tol {
		t.Fatalf("matmul diff %g", d)
	}
}

func TestMatmulPureIsParallelized(t *testing.T) {
	res := build(t, MatmulSrc, MatmulDefines(12), core.Config{Parallelize: true, TeamSize: 2})
	foundMain := false
	for _, l := range res.Report.Loops {
		if l.Func == "main" && l.ParallelLevel == 0 {
			foundMain = true
		}
	}
	if !foundMain {
		t.Fatalf("main nest must be parallel:\n%s", res.Report)
	}
}

func TestMatmulInlinedMatchesReference(t *testing.T) {
	n := 20
	res := build(t, MatmulInlinedSrc, MatmulDefines(n), core.Config{
		Parallelize: true, TeamSize: 3, Mode: core.ModePluTo,
	})
	ptr, err := res.Machine.GlobalPtr("C")
	if err != nil {
		t.Fatal(err)
	}
	got := ReadMatrix(ptr, n)
	want := MatmulRef(n)
	if d := maxRelDiff(flat(got), flat(want)); d > tol {
		t.Fatalf("inlined matmul diff %g", d)
	}
}

func TestMatmulPureVariantsBitIdenticalAcrossBackends(t *testing.T) {
	n := 16
	g := build(t, MatmulSrc, MatmulDefines(n), core.Config{Parallelize: true, TeamSize: 2, Backend: comp.BackendGCC})
	i := build(t, MatmulSrc, MatmulDefines(n), core.Config{Parallelize: true, TeamSize: 2, Backend: comp.BackendICC})
	pg, _ := g.Machine.GlobalPtr("C")
	pi, _ := i.Machine.GlobalPtr("C")
	mg := flat(ReadMatrix(pg, n))
	mi := flat(ReadMatrix(pi, n))
	for k := range mg {
		if mg[k] != mi[k] {
			t.Fatalf("element %d: gcc %v icc %v (kernels must be bit-identical)", k, mg[k], mi[k])
		}
	}
}

func TestMatmulNoInitVariantStillCorrect(t *testing.T) {
	n := 16
	res := build(t, MatmulNoInitParSrc, MatmulDefines(n), core.Config{Parallelize: true, TeamSize: 2})
	// The malloc loop (the only depth-1 nest in initmat) must stay
	// serial in this variant; the element-init nest may parallelize.
	for _, l := range res.Report.Loops {
		if l.Func == "initmat" && l.Depth == 1 {
			t.Fatalf("malloc loop must not be a SCoP in the no-init variant: %+v", l)
		}
	}
	ptr, _ := res.Machine.GlobalPtr("C")
	if d := maxRelDiff(flat(ReadMatrix(ptr, n)), flat(MatmulRef(n))); d > tol {
		t.Fatalf("diff %g", d)
	}
}

func TestMatmulMallocLoopParallelizedOnlyWithPure(t *testing.T) {
	pure := build(t, MatmulSrc, MatmulDefines(12), core.Config{Parallelize: true, TeamSize: 2})
	initPar := false
	for _, l := range pure.Report.Loops {
		if l.Func == "initmat" && l.Depth == 1 && l.ParallelLevel >= 0 {
			initPar = true
		}
	}
	if !initPar {
		t.Errorf("pure chain must parallelize the malloc loop (Fig. 3):\n%s", pure.Report)
	}
	pluto := build(t, MatmulInlinedSrc, MatmulDefines(12), core.Config{
		Parallelize: true, TeamSize: 2, Mode: core.ModePluTo,
	})
	for _, l := range pluto.Report.Loops {
		if l.Func == "initmat" && l.Depth == 1 {
			t.Errorf("classic PluTo must NOT touch the malloc loop: %+v", l)
		}
	}
}

func TestMatmulMKLMatchesReference(t *testing.T) {
	n := 24
	a, bt := MatmulInputs(n)
	got := MatmulMKL(a, bt, rt.NewTeam(4))
	want := MatmulRef(n)
	if d := maxRelDiff(flat(got), flat(want)); d > tol {
		t.Fatalf("MKL-analog diff %g", d)
	}
}

// --- Heat ---

func TestHeatPureMatchesReference(t *testing.T) {
	n, steps := 18, 7
	res := build(t, HeatSrc, HeatDefines(n, steps), core.Config{Parallelize: true, TeamSize: 3})
	ptr, err := res.Machine.GlobalPtr("cur")
	if err != nil {
		t.Fatal(err)
	}
	got := ReadMatrix(ptr, n)
	want := HeatRef(n, steps)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("cell (%d,%d): got %v want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestHeatInlinedMatchesPure(t *testing.T) {
	n, steps := 18, 7
	p := build(t, HeatSrc, HeatDefines(n, steps), core.Config{Parallelize: true, TeamSize: 2})
	q := build(t, HeatInlinedSrc, HeatDefines(n, steps), core.Config{
		Parallelize: true, TeamSize: 2, Mode: core.ModePluTo,
	})
	pp, _ := p.Machine.GlobalPtr("cur")
	pq, _ := q.Machine.GlobalPtr("cur")
	a, b := flat(ReadMatrix(pp, n)), flat(ReadMatrix(pq, n))
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("heat variants diverge at %d: %v vs %v", k, a[k], b[k])
		}
	}
}

func TestHeatBothNestsParallelized(t *testing.T) {
	res := build(t, HeatSrc, HeatDefines(12, 2), core.Config{Parallelize: true, TeamSize: 2})
	count := 0
	for _, l := range res.Report.Loops {
		if l.Func == "main" && l.ParallelLevel == 0 {
			count++
		}
	}
	if count < 2 {
		t.Fatalf("stencil and copy-back nests must both be parallel:\n%s", res.Report)
	}
}

// --- Satellite ---

func TestSatelliteMatchesReference(t *testing.T) {
	npix, bands, iters := 60, 12, 40
	res := build(t, SatelliteSrc, SatelliteDefines(npix, bands, iters),
		core.Config{Parallelize: true, TeamSize: 3})
	ptr, err := res.Machine.GlobalPtr("aod")
	if err != nil {
		t.Fatal(err)
	}
	got := ReadFloats(ptr, npix)
	want := SatelliteRef(npix, bands, iters)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pixel %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSatelliteDynamicScheduleCorrect(t *testing.T) {
	npix, bands, iters := 60, 12, 40
	res := build(t, SatelliteSrc, SatelliteDefines(npix, bands, iters), core.Config{
		Parallelize: true, TeamSize: 4,
		Transform: transform.Options{Schedule: "dynamic,1"},
	})
	ptr, _ := res.Machine.GlobalPtr("aod")
	got := ReadFloats(ptr, npix)
	want := SatelliteRef(npix, bands, iters)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pixel %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestSatelliteOnlyParallelizableWithPure(t *testing.T) {
	res := build(t, SatelliteSrc, SatelliteDefines(20, 4, 10), core.Config{
		Parallelize: true, TeamSize: 2, Mode: core.ModePluTo,
	})
	for _, l := range res.Report.Loops {
		if l.Func == "run" || l.Func == "main" {
			t.Fatalf("classic polyhedral mode must reject the filter loop: %+v", l)
		}
	}
}

// --- LAMA ---

func TestLamaMatchesReference(t *testing.T) {
	rows, nnz := 64, 6
	res := build(t, LamaSrc, LamaDefines(rows, nnz), core.Config{Parallelize: true, TeamSize: 3})
	ptr, err := res.Machine.GlobalPtr("y")
	if err != nil {
		t.Fatal(err)
	}
	got := ReadFloats(ptr, rows)
	want := LamaRef(rows, nnz)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestLamaManualMatchesAuto(t *testing.T) {
	rows, nnz := 64, 6
	auto := build(t, LamaSrc, LamaDefines(rows, nnz), core.Config{Parallelize: true, TeamSize: 4})
	man := build(t, LamaManualSrc, LamaDefines(rows, nnz), core.Config{TeamSize: 4})
	pa, _ := auto.Machine.GlobalPtr("y")
	pm, _ := man.Machine.GlobalPtr("y")
	a, b := ReadFloats(pa, rows), ReadFloats(pm, rows)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: auto %v manual %v", i, a[i], b[i])
		}
	}
}

func TestLamaRowLoopParallelized(t *testing.T) {
	res := build(t, LamaSrc, LamaDefines(32, 4), core.Config{Parallelize: true, TeamSize: 2})
	found := false
	for _, l := range res.Report.Loops {
		if l.Func == "run" && l.ParallelLevel == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("row loop must be parallel:\n%s", res.Report)
	}
}

func TestLamaICCGatherKernelBitIdentical(t *testing.T) {
	rows, nnz := 48, 5
	g := build(t, LamaSrc, LamaDefines(rows, nnz), core.Config{Parallelize: true, TeamSize: 2, Backend: comp.BackendGCC})
	i := build(t, LamaSrc, LamaDefines(rows, nnz), core.Config{Parallelize: true, TeamSize: 2, Backend: comp.BackendICC})
	pg, _ := g.Machine.GlobalPtr("y")
	pi, _ := i.Machine.GlobalPtr("y")
	a, b := ReadFloats(pg, rows), ReadFloats(pi, rows)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("row %d: gcc %v icc %v", k, a[k], b[k])
		}
	}
}

// --- Program/Process concurrency through the full pipeline ---

// TestMatmulConcurrentProcesses compiles the matmul app once through the
// complete chain and serves 8 concurrent runs from the one immutable
// Program, each in its own Process. Every run is checked against the
// tree-walking interpreter oracle on the same checked final source.
func TestMatmulConcurrentProcesses(t *testing.T) {
	n := 16
	cfg := core.Config{Parallelize: true, Defines: MatmulDefines(n)}
	cfg.Transform.MinParallelTrip = -1
	prog, art, _, err := core.BuildProgram(MatmulSrc, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	in, err := interp.New(art.Info, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if _, err := in.RunMain(); err != nil {
		t.Fatalf("interp run: %v", err)
	}
	oraclePtr, err := in.GlobalPtr("C")
	if err != nil {
		t.Fatal(err)
	}
	want := ReadMatrix(oraclePtr, n)

	const procs = 8
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			proc, err := prog.NewProcess(comp.ProcOptions{Team: rt.NewTeam(1 + i%3), Stdout: io.Discard})
			if err != nil {
				errs <- fmt.Errorf("process %d: %v", i, err)
				return
			}
			if _, err := proc.RunMain(); err != nil {
				errs <- fmt.Errorf("process %d: run: %v", i, err)
				return
			}
			ptr, err := proc.GlobalPtr("C")
			if err != nil {
				errs <- fmt.Errorf("process %d: %v", i, err)
				return
			}
			got := ReadMatrix(ptr, n)
			if d := maxRelDiff(flat(got), flat(want)); d > 0 {
				errs <- fmt.Errorf("process %d: differs from oracle by %g", i, d)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// --- Reduction kernels (Fig. R1) ---

func TestReduceSumParallelizesAndMatchesRef(t *testing.T) {
	n := 5000
	res := build(t, ReduceSumSrc, ReduceDefines(n), core.Config{Parallelize: true, TeamSize: 4})
	if !strings.Contains(res.Stages.Transformed, "reduction(+:s)") {
		t.Fatalf("sum kernel not recognized as reduction:\n%s", res.Stages.Transformed)
	}
	got, err := res.Machine.GlobalInt("result")
	if err != nil {
		t.Fatal(err)
	}
	if want := ReduceSumRef(n); got != want {
		t.Fatalf("parallel sum %d, reference %d", got, want)
	}
}

func TestReduceSumBitIdenticalAcrossTeamSizes(t *testing.T) {
	// Integer reductions are exact: every team size and both modes give
	// the reference value.
	n := 3000
	want := ReduceSumRef(n)
	for _, cores := range []int{1, 2, 8} {
		res := build(t, ReduceSumSrc, ReduceDefines(n), core.Config{Parallelize: true, TeamSize: cores})
		got, err := res.Machine.GlobalInt("result")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%d cores: sum %d, reference %d", cores, got, want)
		}
	}
}

func TestReduceDotParallelizesAndMatchesSerial(t *testing.T) {
	n := 4000
	par := build(t, ReduceDotSrc, ReduceDefines(n), core.Config{Parallelize: true, TeamSize: 4})
	if !strings.Contains(par.Stages.Transformed, "reduction(+:res)") {
		t.Fatalf("dot kernel not recognized as reduction:\n%s", par.Stages.Transformed)
	}
	pv, err := par.Machine.GlobalFloat("result")
	if err != nil {
		t.Fatal(err)
	}
	seq := build(t, ReduceDotSrc, ReduceDefines(n), core.Config{})
	sv, err := seq.Machine.GlobalFloat("result")
	if err != nil {
		t.Fatal(err)
	}
	// Float reduction: parallel combine order differs from the serial
	// chain, so compare within float tolerance (and exercise the
	// determinism contract separately at the comp level).
	if d := math.Abs(pv-sv) / math.Max(math.Abs(sv), 1); d > tol {
		t.Fatalf("parallel dot %v vs serial %v (rel diff %g)", pv, sv, d)
	}
}

// --- Fig K1 kernel workloads ---

// readFVec reads n float cells of a malloc'd global vector.
func readFVec(t *testing.T, res *core.Result, name string, n int) []float32 {
	t.Helper()
	p, err := res.Machine.GlobalPtr(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(p.Add(int64(i)).LoadFloat())
	}
	return out
}

func TestAxpyKernelMatchesReferenceFusedAndDispatch(t *testing.T) {
	const n, reps = 256, 3
	defs := KernDefines(n, reps)
	want := KernRefAxpy(n, reps)
	for _, noFuse := range []bool{false, true} {
		res := build(t, AxpySrc, defs, core.Config{NoFuse: noFuse})
		got := readFVec(t, res, "y", n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("NoFuse=%v: y[%d] = %v, want %v (must be bit-identical)", noFuse, i, got[i], want[i])
			}
		}
	}
}

func TestStencilKernelMatchesReferenceFusedAndDispatch(t *testing.T) {
	const n, reps = 128, 2
	defs := KernDefines(n, reps)
	want := KernRefStencil(n)
	for _, noFuse := range []bool{false, true} {
		res := build(t, StencilSrc, defs, core.Config{NoFuse: noFuse})
		got := readFVec(t, res, "y", n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("NoFuse=%v: y[%d] = %v, want %v (must be bit-identical)", noFuse, i, got[i], want[i])
			}
		}
	}
}

func TestMatmulKernMatchesReference(t *testing.T) {
	const n = 24
	defs := MatmulDefines(n)
	want := flat(MatmulRef(n))
	for _, noFuse := range []bool{false, true} {
		res := build(t, MatmulKernSrc, defs, core.Config{Backend: comp.BackendICC, NoFuse: noFuse})
		ptr, err := res.Machine.GlobalPtr("C")
		if err != nil {
			t.Fatal(err)
		}
		got := flat(ReadMatrix(ptr, n))
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("NoFuse=%v: C[%d] = %v, want %v (must be bit-identical)", noFuse, i, got[i], want[i])
			}
		}
	}
}

// --- Histogram (array reduction) ---

func TestHistogramMatchesReference(t *testing.T) {
	const n, bins = 3000, 24
	res := build(t, HistogramSrc, HistogramDefines(n, bins),
		core.Config{Parallelize: true, TeamSize: 8})
	ref := HistogramRef(n, bins)
	p, err := res.Machine.GlobalPtr("out")
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bins; b++ {
		if got := p.Add(int64(b)).LoadInt(); got != ref[b] {
			t.Errorf("bin %d: got %d want %d", b, got, ref[b])
		}
	}
}

func TestHistogramHotLoopParallelized(t *testing.T) {
	res := build(t, HistogramSrc, HistogramDefines(1000, 16),
		core.Config{Parallelize: true})
	found := false
	for _, lr := range res.Report.Loops {
		for _, r := range lr.Reductions {
			if r == "+:hist[]" && lr.ParallelLevel == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("histogram hot loop not parallelized as an array reduction: %+v", res.Report.Loops)
	}
}

// --- Fig B1 gather workload ---

func TestGatherMatchesReferenceSerialAndParallel(t *testing.T) {
	const n, m, reps = 256, 64, 3
	defs := GatherDefines(n, m, reps)
	want := GatherRef(n, m)
	for _, par := range []bool{false, true} {
		res := build(t, GatherSrc, defs, core.Config{Parallelize: par})
		got := readFVec(t, res, "y", n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Parallelize=%v: y[%d] = %v, want %v (must be bit-identical)", par, i, got[i], want[i])
			}
		}
	}
}
