package apps

import "fmt"

// Fig K1 workloads: the canonical element-wise kernels the fusion
// engine targets, each as an init + run pair so the harness times only
// the kernel (matmul, the fourth K1 workload, reuses MatmulSrc — its
// hot loop is the extracted-dot reduction kernel).
//
// KernRef* compute the expected outputs with the execution model's
// float semantics (float64 arithmetic, float32 rounding at stores) so
// tests can pin every variant bit-for-bit.

// AxpySrc is the axpy kernel y = a*x + y, REPS sweeps over length N.
const AxpySrc = `
float *x, *y;

void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++) {
        x[i] = (float)(i % 13) * 0.25f;
        y[i] = (float)(i % 7) * 0.5f;
    }
}

int run(void) {
    float a = 1.5f;
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            y[i] = a * x[i] + y[i];
    }
    return 0;
}

int main(void) {
    initvec();
    return run();
}
`

// CopySrc is the bulk copy kernel y = x.
const CopySrc = `
float *x, *y;

void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++) {
        x[i] = (float)(i % 17) * 0.125f;
        y[i] = 0.0f;
    }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            y[i] = x[i];
    }
    return 0;
}

int main(void) {
    initvec();
    return run();
}
`

// StencilSrc is a 1-D 3-point stencil y[i] = c*(x[i-1]+x[i]+x[i+1])
// over the interior — constant-offset reads, the shape whose bounds
// check must cover [0, N) from a single hoisted test per operand.
const StencilSrc = `
float *x, *y;

void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++) {
        x[i] = (float)(i % 11) * 0.5f;
        y[i] = 0.0f;
    }
}

int run(void) {
    float c = 0.3333f;
    for (int r = 0; r < REPS; r++) {
        for (int i = 1; i < N - 1; i++)
            y[i] = c * (x[i - 1] + x[i] + x[i + 1]);
    }
    return 0;
}

int main(void) {
    initvec();
    return run();
}
`

// MatmulKernSrc is the K1 matrix-multiplication workload: the paper's
// extracted-dot matmul (Listing 7 shape) with an init/run split so the
// harness times only the compute. Under the ICC backend the dot loop
// compiles to the fused reduction kernel; with fusion off it pays one
// closure per iteration per operand.
const MatmulKernSrc = `
float **A, **Bt, **C;

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int k = 0; k < size; ++k)
        res += a[k] * b[k];
    return res;
}

void initmat(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}

int run(void) {
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    return 0;
}

int main(void) {
    initmat();
    return run();
}
`

// NoncanonSrc is the deliberately non-canonical Fig T1 workload: the
// loop body declares a local and branches per element, so it neither
// fuses (no single element-wise statement) nor vectorizes (no
// reduction shape) — every iteration runs on the statement engine,
// making the closure-vs-tape dispatch cost the whole measurement.
const NoncanonSrc = `
float *x, *y;

void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++) {
        x[i] = (float)(i % 13) * 0.25f;
        y[i] = (float)(i % 7) * 0.5f;
    }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++) {
            float v = x[i];
            if (v > 2.5f)
                y[i] = v * 0.5f + y[i] * 0.25f;
            else
                y[i] = v + 0.125f;
        }
    }
    return 0;
}

int main(void) {
    initvec();
    return run();
}
`

// KernDefines injects the vector length and sweep count of the K1
// element-wise kernels.
func KernDefines(n, reps int) map[string]string {
	return map[string]string{
		"N":    fmt.Sprintf("%d", n),
		"REPS": fmt.Sprintf("%d", reps),
	}
}

// KernRefAxpy computes the axpy result after reps sweeps.
func KernRefAxpy(n, reps int) []float32 {
	x := make([]float32, n)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		x[i] = float32(float64(i%13) * 0.25)
		y[i] = float32(float64(i%7) * 0.5)
	}
	a := float32(1.5)
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			y[i] = float32(float64(a)*float64(x[i]) + float64(y[i]))
		}
	}
	return y
}

// KernRefNoncanon computes the Noncanon result after reps sweeps with
// the execution model's float semantics.
func KernRefNoncanon(n, reps int) []float32 {
	x := make([]float32, n)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		x[i] = float32(float64(i%13) * 0.25)
		y[i] = float32(float64(i%7) * 0.5)
	}
	for r := 0; r < reps; r++ {
		for i := 0; i < n; i++ {
			v := x[i]
			if v > 2.5 {
				y[i] = float32(float64(v)*0.5 + float64(y[i])*0.25)
			} else {
				y[i] = float32(float64(v) + 0.125)
			}
		}
	}
	return y
}

// KernRefStencil computes the stencil result (one sweep is
// idempotent-free, so reps matters only through x staying constant).
func KernRefStencil(n int) []float32 {
	x := make([]float32, n)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		x[i] = float32(float64(i%11) * 0.5)
	}
	c := float32(0.3333)
	for i := 1; i < n-1; i++ {
		s := float64(x[i-1]) + float64(x[i]) + float64(x[i+1])
		y[i] = float32(float64(c) * s)
	}
	return y
}
