package apps

import (
	"strings"
	"testing"

	"purec/internal/core"
)

// relDefs sizes the relational workloads small enough for tests but
// large enough to clear no thresholds (MinParallelTrip is disabled in
// build()).
func relDefs() map[string]string { return RelationalDefines(96, 112, 16, 2) }

// TestDerivedSubscriptParallelizesAndElides pins the derived-iterator
// acceptance shape: j = i + K proves through the affine relation, the
// nest parallelizes, and the substituted body fuses with its checks
// elided.
func TestDerivedSubscriptParallelizesAndElides(t *testing.T) {
	res := build(t, DerivedSrc, relDefs(), core.Config{Parallelize: true, TeamSize: 3})
	assertParallel(t, res, "run")
	if res.Program.ElidedChecks() == 0 {
		t.Error("derived-subscript build elided no checks")
	}
}

// TestClampGatherParallelizesAndElides pins the ?:-clamp acceptance
// shape: the clamped index proves via path-sensitive refinement, the
// star read upgrades to Bounded, and the clamped gather kernel elides
// its per-element test.
func TestClampGatherParallelizesAndElides(t *testing.T) {
	res := build(t, ClampGatherSrc, relDefs(), core.Config{Parallelize: true, TeamSize: 3})
	assertParallel(t, res, "run")
	if res.Program.ElidedChecks() == 0 {
		t.Error("clamp-gather build elided no checks")
	}
}

// TestPtrScaleParallelizesWithAliasProof pins the no-alias acceptance
// shape: p and q resolve to disjoint regions, the nest parallelizes,
// and the report carries the resolution notes.
func TestPtrScaleParallelizesWithAliasProof(t *testing.T) {
	res := build(t, PtrScaleSrc, relDefs(), core.Config{Parallelize: true, TeamSize: 3})
	assertParallel(t, res, "run")
	if res.Program.ElidedChecks() == 0 {
		t.Error("pointer-operand build elided no checks")
	}
	rep := res.Report.String()
	if !strings.Contains(rep, "alias: p -> x") {
		t.Errorf("report must name the alias resolution:\n%s", rep)
	}
}

// TestAliasedPairStaysSerial pins the soundness edge: overlapping
// pointers into one array must serialize — the alias resolution renames
// both to x and the dependence analysis finds the carried dependence.
func TestAliasedPairStaysSerial(t *testing.T) {
	res := build(t, AliasedPairSrc, relDefs(), core.Config{Parallelize: true, TeamSize: 3})
	for _, l := range res.Report.Loops {
		if l.Func != "run" {
			continue
		}
		if l.ParallelLevel >= 0 {
			t.Fatalf("aliased pair must stay serial: %+v", l)
		}
		if l.SerialReason == "" {
			t.Error("serial nest must carry a reason")
		}
	}
}

func assertParallel(t *testing.T, res *core.Result, fn string) {
	t.Helper()
	for _, l := range res.Report.Loops {
		if l.Func == fn && l.ParallelLevel >= 0 {
			return
		}
	}
	t.Fatalf("no parallel nest in %s: %+v", fn, res.Report.Loops)
}
