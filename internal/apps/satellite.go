package apps

import "fmt"

// SatelliteSrc is the stand-in for the paper's third application: the
// aerosol-optical-depth (AOD) retrieval filter over hyperspectral MODIS
// data (Sect. 4.1). The original data is proprietary; this synthetic
// equivalent preserves what matters for the evaluation:
//
//   - a per-pixel filter function of several dozen lines with
//     data-dependent conditional control flow ("dynamic conditional
//     jumps") that no polyhedral analyzer can process — only the pure
//     keyword makes the pixel loop parallelizable;
//   - strongly pixel-dependent cost: the retrieval iteration count ramps
//     up across the image (hazy pixels cluster in later rows), producing
//     the "unbalanced behavior in the later program phases" that made
//     the paper switch the OpenMP schedule to dynamic,1 (Sect. 4.3.3,
//     Figs. 8 and 9).
//
// The cube is stored pixel-major: cube[p] is the BANDS-long spectrum of
// pixel p; lut is a wavelength-dependent calibration table.
const SatelliteSrc = `
float **cube, *lut, *aod;

pure float retrieve(pure float* px, pure float* table, int bands, int pixel) {
    float ref = 0.0f;
    for (int b = 0; b < bands; b++)
        ref += px[b] * table[b];
    ref = ref / (float)bands;
    float tau = 0.1f;
    int iters = 2 + (pixel * MAXITERS) / NPIX + (pixel * 7919) % 8;
    if (ref > 0.35f)
        iters = iters + MAXITERS / 4;
    for (int it = 0; it < iters; it++) {
        float err = 0.0f;
        for (int b = 0; b < bands; b++) {
            float model = tau * table[b] + (1.0f - tau) * 0.2f;
            float d = px[b] - model;
            if (d < 0.0f)
                d = -d;
            err += d;
        }
        err = err / (float)bands;
        if (err < 0.01f)
            return tau;
        if (ref > tau)
            tau = tau + err * 0.05f;
        else
            tau = tau - err * 0.05f;
        if (tau < 0.0f)
            tau = 0.0f;
        if (tau > 5.0f)
            tau = 5.0f;
    }
    return tau;
}

void initcube(void) {
    cube = (float**)malloc(NPIX * sizeof(float*));
    lut = (float*)malloc(BANDS * sizeof(float));
    aod = (float*)malloc(NPIX * sizeof(float));
    for (int b = 0; b < BANDS; b++)
        lut[b] = 0.3f + 0.4f * (float)(b % 5) / 5.0f;
    for (int p = 0; p < NPIX; p++) {
        cube[p] = (float*)malloc(BANDS * sizeof(float));
        for (int b = 0; b < BANDS; b++)
            cube[p][b] = 0.1f + (float)((p * 31 + b * 17) % 97) / 97.0f * (0.2f + 0.6f * (float)p / (float)NPIX);
    }
}

int run(void) {
    for (int p = 0; p < NPIX; p++)
        aod[p] = retrieve((pure float*)cube[p], (pure float*)lut, BANDS, p);
    return 0;
}

int main(void) {
    initcube();
    return run();
}
`

// SatelliteDefines injects pixel count, band count and the iteration
// bound controlling per-pixel cost skew.
func SatelliteDefines(npix, bands, maxiters int) map[string]string {
	return map[string]string{
		"NPIX":     fmt.Sprintf("%d", npix),
		"BANDS":    fmt.Sprintf("%d", bands),
		"MAXITERS": fmt.Sprintf("%d", maxiters),
	}
}

// SatelliteRef mirrors the retrieval with the execution model's float
// semantics for verification.
func SatelliteRef(npix, bands, maxiters int) []float32 {
	lut := make([]float32, bands)
	for b := 0; b < bands; b++ {
		lut[b] = float32(0.3 + 0.4*float64(b%5)/5.0)
	}
	cube := make([][]float32, npix)
	for p := 0; p < npix; p++ {
		cube[p] = make([]float32, bands)
		for b := 0; b < bands; b++ {
			cube[p][b] = float32(0.1 + float64((p*31+b*17)%97)/97.0*(0.2+0.6*float64(p)/float64(npix)))
		}
	}
	out := make([]float32, npix)
	for p := 0; p < npix; p++ {
		out[p] = satRetrieveRef(cube[p], lut, bands, p, maxiters, npix)
	}
	return out
}

func satRetrieveRef(px, table []float32, bands, pixel, maxiters, npix int) float32 {
	var ref float32
	for b := 0; b < bands; b++ {
		// Model semantics: the compound assignment computes in float64
		// and rounds once at the float store.
		ref = float32(float64(ref) + float64(px[b])*float64(table[b]))
	}
	ref = float32(float64(ref) / float64(bands))
	tau := float32(0.1)
	iters := 2 + (pixel*maxiters)/npix + (pixel*7919)%8
	if ref > 0.35 {
		iters += maxiters / 4
	}
	for it := 0; it < iters; it++ {
		var err float32
		for b := 0; b < bands; b++ {
			model := float32(float64(tau)*float64(table[b]) + (1.0-float64(tau))*0.2)
			d := float32(float64(px[b]) - float64(model))
			if d < 0 {
				d = -d
			}
			err = float32(float64(err) + float64(d))
		}
		err = float32(float64(err) / float64(bands))
		if err < 0.01 {
			return tau
		}
		if ref > tau {
			tau = float32(float64(tau) + float64(err)*0.05)
		} else {
			tau = float32(float64(tau) - float64(err)*0.05)
		}
		if tau < 0 {
			tau = 0
		}
		if tau > 5 {
			tau = 5
		}
	}
	return tau
}
