package apps

import (
	"fmt"

	"purec/internal/mem"
)

// LamaSrc is the stand-in for the paper's fourth application: the ELL
// sparse matrix–vector multiplication from the LAMA library (Sect. 4.1).
// The paper's input, the Boeing/pwtk stiffness matrix (217k rows, 11.5M
// non-zeros), is an external dataset; the synthetic generator below
// produces a symmetric banded matrix in (row-major, padded) ELL format
// with the same structural features that matter:
//
//   - indirect addressing x[cols[...]] that defeats polyhedral analysis
//     unless the per-row kernel is an opaque pure function;
//   - a skewed tail: the last rows carry more non-zeros, so the paper's
//     schedule(static) expectation of balanced threads is only mostly
//     true (Sect. 4.3.4, Figs. 10 and 11).
//
// values/cols are ROWS×MAXNNZ row-major with zero padding.
const LamaSrc = `
float *values, *x, *y;
int *cols;

pure float ellrow(pure float* vals, pure int* idx, pure float* vec, int row, int nnz) {
    float res = 0.0f;
    for (int k = 0; k < nnz; ++k)
        res += vals[row * nnz + k] * vec[idx[row * nnz + k]];
    return res;
}

void initell(void) {
    values = (float*)malloc(ROWS * MAXNNZ * sizeof(float));
    cols = (int*)malloc(ROWS * MAXNNZ * sizeof(int));
    x = (float*)malloc(ROWS * sizeof(float));
    y = (float*)malloc(ROWS * sizeof(float));
    for (int r = 0; r < ROWS; r++) {
        x[r] = 1.0f + (float)(r % 19) * 0.125f;
        int nnz = 2 + (r * 13) % (MAXNNZ - 2);
        if (r > ROWS - ROWS / 8)
            nnz = MAXNNZ;
        for (int k = 0; k < MAXNNZ; k++) {
            int pos = r * MAXNNZ + k;
            if (k < nnz) {
                int c = (r + k * 3) % ROWS;
                cols[pos] = c;
                values[pos] = 0.5f + (float)((r + c) % 11) * 0.0625f;
            } else {
                cols[pos] = 0;
                values[pos] = 0.0f;
            }
        }
    }
}

int run(void) {
    for (int r = 0; r < ROWS; r++)
        y[r] = ellrow((pure float*)values, (pure int*)cols, (pure float*)x, r, MAXNNZ);
    return 0;
}

int main(void) {
    initell();
    return run();
}
`

// LamaManualSrc is the hand-parallelized comparator: the kernel is
// written inline under an explicit
// "#pragma omp parallel for schedule(static)" exactly as the paper's
// manual version (Sect. 4.3.4). Classic polyhedral tools cannot produce
// this (indirect addressing), so it exists only as a hand-written
// program.
const LamaManualSrc = `
float *values, *x, *y;
int *cols;

void initell(void) {
    values = (float*)malloc(ROWS * MAXNNZ * sizeof(float));
    cols = (int*)malloc(ROWS * MAXNNZ * sizeof(int));
    x = (float*)malloc(ROWS * sizeof(float));
    y = (float*)malloc(ROWS * sizeof(float));
    for (int r = 0; r < ROWS; r++) {
        x[r] = 1.0f + (float)(r % 19) * 0.125f;
        int nnz = 2 + (r * 13) % (MAXNNZ - 2);
        if (r > ROWS - ROWS / 8)
            nnz = MAXNNZ;
        for (int k = 0; k < MAXNNZ; k++) {
            int pos = r * MAXNNZ + k;
            if (k < nnz) {
                int c = (r + k * 3) % ROWS;
                cols[pos] = c;
                values[pos] = 0.5f + (float)((r + c) % 11) * 0.0625f;
            } else {
                cols[pos] = 0;
                values[pos] = 0.0f;
            }
        }
    }
}

int run(void) {
#pragma omp parallel for schedule(static)
    for (int r = 0; r < ROWS; r++) {
        float res = 0.0f;
        for (int k = 0; k < MAXNNZ; ++k)
            res += values[r * MAXNNZ + k] * x[cols[r * MAXNNZ + k]];
        y[r] = res;
    }
    return 0;
}

int main(void) {
    initell();
    return run();
}
`

// LamaDefines injects matrix shape parameters.
func LamaDefines(rows, maxnnz int) map[string]string {
	return map[string]string{
		"ROWS":   fmt.Sprintf("%d", rows),
		"MAXNNZ": fmt.Sprintf("%d", maxnnz),
	}
}

// LamaRef computes the expected y vector with the execution model's
// float semantics.
func LamaRef(rows, maxnnz int) []float32 {
	values := make([]float32, rows*maxnnz)
	cols := make([]int, rows*maxnnz)
	x := make([]float32, rows)
	for r := 0; r < rows; r++ {
		x[r] = float32(1.0 + float64(r%19)*0.125)
		nnz := 2 + (r*13)%(maxnnz-2)
		if r > rows-rows/8 {
			nnz = maxnnz
		}
		for k := 0; k < maxnnz; k++ {
			pos := r*maxnnz + k
			if k < nnz {
				c := (r + k*3) % rows
				cols[pos] = c
				values[pos] = float32(0.5 + float64((r+c)%11)*0.0625)
			}
		}
	}
	y := make([]float32, rows)
	for r := 0; r < rows; r++ {
		var res float32
		for k := 0; k < maxnnz; k++ {
			pos := r*maxnnz + k
			res = float32(float64(res) + float64(values[pos])*float64(x[cols[pos]]))
		}
		y[r] = res
	}
	return y
}

// ReadFloats reads n float cells starting at p.
func ReadFloats(p mem.Pointer, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = float32(p.Add(int64(i)).LoadFloat())
	}
	return out
}
