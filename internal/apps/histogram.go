package apps

import "fmt"

// HistogramSrc is the array-reduction workload: a bin-count over a
// data array — the hot loop of vector-quantized clustering pipelines
// (counting points per cluster assignment). The middle loop writes
// hist[data[i]]++ through a data-dependent subscript, which PR 5's
// array-reduction stage turns into
// #pragma omp parallel for reduction(+:hist[]): every worker fills a
// private identity-initialized copy of hist and the copies combine
// element-wise after the join. The accumulator is an integer array, so
// the parallel result is bit-identical to the serial build at every
// team size and schedule.
//
// The local hist scratch copies out to the global out array so tests
// and the bench harness can read the result after run() returns.
const HistogramSrc = `
int data[N];
int out[BINS];

void initdata(void) {
    for (int i = 0; i < N; i++)
        data[i] = (i * 1103515245 + 12345) % BINS;
}

int run(void) {
    int hist[BINS];
    for (int b = 0; b < BINS; b++)
        hist[b] = 0;
    for (int i = 0; i < N; i++)
        hist[data[i]]++;
    for (int b = 0; b < BINS; b++)
        out[b] = hist[b];
    return 0;
}

int main(void) {
    initdata();
    return run();
}
`

// HistogramDefines injects the element count and bin count.
func HistogramDefines(n, bins int) map[string]string {
	return map[string]string{
		"N":    fmt.Sprintf("%d", n),
		"BINS": fmt.Sprintf("%d", bins),
	}
}

// HistogramRef computes the expected bin counts (exact at every team
// size: integer array reductions are bit-identical by contract).
func HistogramRef(n, bins int) []int64 {
	hist := make([]int64, bins)
	for i := 0; i < n; i++ {
		hist[(int64(i)*1103515245+12345)%int64(bins)]++
	}
	return hist
}
