package apps

import "fmt"

// SparseHistSrc is the sparse-touch array-reduction workload behind
// Fig A2: a bin count over a huge bin space (BINS cells) whose data
// values all land in a K-bin window starting at BASE — the shape of
// feature hashing or cluster counting where the live labels occupy a
// tiny slice of the id space. The hot loop is the same
// hist[data[i]]++ array reduction as the Fig A1 histogram, but here
// each worker touches at most K bins of a BINS-cell accumulator, so
// dense per-worker private copies pay O(BINS) to allocate,
// identity-fill and combine while block-sparse privates
// (-sparse-privates) pay O(K). The combine-topology knob
// (-combine=tree) cuts the combine critical path from
// workers x BINS to log2(workers) x BINS on top.
//
// Only the K-bin window copies out, so checking the result stays O(K).
const SparseHistSrc = `
int data[N];
int out[K];

void initdata(void) {
    for (int i = 0; i < N; i++)
        data[i] = BASE + (i * 1103515245 + 12345) % K;
}

int run(void) {
    int hist[BINS];
    for (int b = 0; b < BINS; b++)
        hist[b] = 0;
    for (int i = 0; i < N; i++)
        hist[data[i]]++;
    for (int b = 0; b < K; b++)
        out[b] = hist[BASE + b];
    return 0;
}

int main(void) {
    initdata();
    return run();
}
`

// SparseHistDefines injects the element count, the bin-space size and
// the touched-window width; the window sits mid-space so neither the
// first nor the last private block is touched by construction.
func SparseHistDefines(n, bins, touched int) map[string]string {
	if touched > bins {
		touched = bins
	}
	return map[string]string{
		"N":    fmt.Sprintf("%d", n),
		"BINS": fmt.Sprintf("%d", bins),
		"K":    fmt.Sprintf("%d", touched),
		"BASE": fmt.Sprintf("%d", (bins-touched)/2),
	}
}

// SparseHistRef computes the expected counts of the touched window
// (exact at every team size, combine topology and private layout:
// integer array reductions are bit-identical by contract).
func SparseHistRef(n, bins, touched int) []int64 {
	if touched > bins {
		touched = bins
	}
	hist := make([]int64, touched)
	for i := 0; i < n; i++ {
		hist[(int64(i)*1103515245+12345)%int64(touched)]++
	}
	return hist
}
