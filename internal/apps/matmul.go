// Package apps contains the paper's four evaluation applications
// (Sect. 4.1) as mini-C sources, in the variants the evaluation compares:
//
//   - the pure version (functions in the loop nests, the paper's
//     contribution makes these parallelizable);
//   - the manually inlined version that classic PluTo(-SICA) can process
//     (matrix multiplication and heat only — the paper states the two
//     real-world codes cannot be handled by the polyhedral tools at all);
//   - hand-parallelized versions with explicit OpenMP pragmas;
//   - native Go reference implementations mirroring the execution
//     model's float semantics, used to verify every variant.
//
// Problem sizes are injected through #define macros, the -D analog.
package apps

import (
	"fmt"

	"purec/internal/mem"
	"purec/internal/rt"
)

// MatmulSrc is the paper's Listing 7: C = A·Bᵀ with a pure dot product.
// The matrix initialization uses malloc inside loops; because malloc is
// in the pure hashset, the pure tool chain parallelizes the init loop as
// well — the effect the paper discovered in Fig. 3.
const MatmulSrc = `
float **A, **Bt, **C;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

void initmat(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}

int main(void) {
    initmat();
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    return 0;
}
`

// MatmulNoInitParSrc is the pure variant with the matrix allocation
// manually excluded from parallelization (the black bars of Fig. 3): an
// impure no-op call in the malloc loop keeps it out of every SCoP.
const MatmulNoInitParSrc = `
float **A, **Bt, **C;

void serialize(void) { }

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

void initmat(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        serialize();
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}

int main(void) {
    initmat();
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    return 0;
}
`

// MatmulInlinedSrc is the version classic PluTo can handle: the dot
// product is manually inlined ("the code of the pure functions must be
// inlined manually due to the limitations of the polyhedral
// transformers", Sect. 4.2), leaving a perfect 3-deep affine nest.
const MatmulInlinedSrc = `
float **A, **Bt, **C;

void initmat(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}

int main(void) {
    initmat();
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = 0.0f;
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            for (int k = 0; k < N; ++k)
                C[i][j] += A[i][k] * Bt[j][k];
    return 0;
}
`

// MatmulDefines injects the problem size.
func MatmulDefines(n int) map[string]string {
	return map[string]string{"N": fmt.Sprintf("%d", n)}
}

// MatmulRef computes the expected C matrix with the execution model's
// float semantics (float64 arithmetic, float32 rounding at stores), for
// verification of every variant.
func MatmulRef(n int) [][]float32 {
	a := make([][]float32, n)
	bt := make([][]float32, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float32, n)
		bt[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			a[i][j] = float32(float64((i+j)%13) * 0.25)
			bt[i][j] = float32(float64((i-j)%7) * 0.5)
		}
	}
	c := make([][]float32, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			var res float32
			for k := 0; k < n; k++ {
				res += float32(float64(a[i][k]) * float64(bt[j][k]))
			}
			c[i][j] = res
		}
	}
	return c
}

// MatmulMKL is the hand-tuned comparator standing in for the Intel MKL
// matrix multiplication (Sect. 4.3.1): native Go, register-blocked inner
// kernel over the transposed operand, parallel over row blocks.
func MatmulMKL(a, bt [][]float32, team *rt.Team) [][]float32 {
	n := len(a)
	c := make([][]float32, n)
	for i := range c {
		c[i] = make([]float32, n)
	}
	team.ParallelFor(0, int64(n-1), rt.Static, 0, func(_ int, lo, hi int64) {
		for i := lo; i <= hi; i++ {
			ai := a[i]
			ci := c[i]
			for j := 0; j < n; j++ {
				bj := bt[j]
				var s0, s1, s2, s3 float32
				k := 0
				for ; k+4 <= n; k += 4 {
					s0 += ai[k] * bj[k]
					s1 += ai[k+1] * bj[k+1]
					s2 += ai[k+2] * bj[k+2]
					s3 += ai[k+3] * bj[k+3]
				}
				s := s0 + s1 + s2 + s3
				for ; k < n; k++ {
					s += ai[k] * bj[k]
				}
				ci[j] = s
			}
		}
	})
	return c
}

// MatmulInputs builds the A and Bt matrices used by MatmulMKL, matching
// the mini-C initialization.
func MatmulInputs(n int) (a, bt [][]float32) {
	a = make([][]float32, n)
	bt = make([][]float32, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float32, n)
		bt[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			a[i][j] = float32(float64((i+j)%13) * 0.25)
			bt[i][j] = float32(float64((i-j)%7) * 0.5)
		}
	}
	return a, bt
}

// ReadMatrix extracts an n×n float matrix from a machine global of type
// float** (rows allocated with malloc).
func ReadMatrix(p mem.Pointer, n int) [][]float32 {
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		row := p.Add(int64(i)).LoadPtr()
		out[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			out[i][j] = float32(row.Add(int64(j)).LoadFloat())
		}
	}
	return out
}
