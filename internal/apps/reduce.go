package apps

import "fmt"

// ReduceSumSrc is the README quickstart kernel at benchmark scale: a
// loop accumulating results of a pure call, `s += square(i)` — the
// paper's headline pattern, which PR 3's reduction stage turns into
// `#pragma omp parallel for reduction(+:s)`. The accumulator is an
// integer, so the parallel result is bit-identical to the serial build
// at every team size.
const ReduceSumSrc = `
int result;

pure int square(int x) { return x * x; }

int run(void) {
    int s = 0;
    for (int i = 0; i < N; i++)
        s += square(i % 8191);
    result = s;
    return 0;
}

int main(void) {
    return run();
}
`

// ReduceDotSrc is the extracted dot-product kernel called once at top
// level: the reduction loop inside dot is the only parallelism in the
// program, so the serial-vs-reduction comparison isolates exactly the
// new parallel-reduction runtime (in the matmul figures the dot calls
// sit inside an already-parallel nest and run inline).
const ReduceDotSrc = `
float *x, *y;
float result;

pure float mult(float a, float b) {
    return a * b;
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += mult(a[i], b[i]);
    return res;
}

void initvec(void) {
    x = (float*)malloc(N * sizeof(float));
    y = (float*)malloc(N * sizeof(float));
    for (int i = 0; i < N; i++) {
        x[i] = (float)(i % 13) * 0.25f;
        y[i] = (float)(i % 7) * 0.5f;
    }
}

int run(void) {
    result = dot((pure float*)x, (pure float*)y, N);
    return 0;
}

int main(void) {
    initvec();
    return run();
}
`

// ReduceDefines injects the vector/loop length.
func ReduceDefines(n int) map[string]string {
	return map[string]string{"N": fmt.Sprintf("%d", n)}
}

// ReduceSumRef computes the integer sum the quickstart kernel must
// produce (exact at every team size).
func ReduceSumRef(n int) int64 {
	var s int64
	for i := 0; i < n; i++ {
		v := int64(i % 8191)
		s += v * v
	}
	return s
}
