package apps

import "fmt"

// Relational-analysis workloads (PR 8): the three shapes the interval
// analysis of PR 7 could not prove and the relational layer can — a
// derived-iterator subscript, a ?:-clamped gather, and a pointer-operand
// loop resolved by the alias analysis — plus the aliased-pointer edge
// pair that must stay serial. Each is the provable/unprovable A/B
// discipline of the Fig B1 gather pair: the proof removes only work
// that could never fire, so outputs are bit-identical either way.

// DerivedSrc is the derived-iterator subscript: j = i + K inherits i's
// loop bounds through the affine relation, so x[j] proves in-bounds
// (extent N + K), the transformer forward-substitutes j, and the body
// collapses to a fusable single-statement copy.
const DerivedSrc = `
float x[M];
float y[N];

void initrel(void) {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 9) * 0.25f; }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++) {
            int j = i + K;
            y[i] = x[j];
        }
    }
    return 0;
}

int main(void) {
    initrel();
    return run();
}
`

// ClampGatherSrc is the ?:-clamp idiom of the k-means assignment step:
// the data-dependent index d[i] is clamped into [0, M-1] inline, the
// path-sensitive refinement proves the access, and the clamped gather
// kernel elides its per-element bounds test.
const ClampGatherSrc = `
float x[M];
float y[N];
int d[N];

void initrel(void) {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 9) * 0.25f; }
    for (int i = 0; i < N; i++) { d[i] = i % (2 * M) - M / 2; }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            y[i] = x[d[i] < 0 ? 0 : (d[i] > M - 1 ? M - 1 : d[i])];
    }
    return 0;
}

int main(void) {
    initrel();
    return run();
}
`

// PtrScaleSrc is the no-alias pointer-operand loop: p and q are
// single-store pointers into distinct arrays, so the points-to analysis
// resolves both exactly, the dependence analysis sees disjoint regions,
// and the nest parallelizes with the p[i] check proven against x's
// extent minus the offset.
const PtrScaleSrc = `
float x[M];
float y[N];

void initrel(void) {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 9) * 0.25f; }
}

int run(void) {
    float *p = &x[K];
    float *q = &y[0];
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            q[i] = p[i] * 2.0f + 1.0f;
    }
    return 0;
}

int main(void) {
    initrel();
    return run();
}
`

// AliasedPairSrc is the must-stay-serial edge: p and q overlap inside
// the same array (q = p + 1), so the write through p and the read
// through q carry a real loop dependence; the alias resolution renames
// both to x and the dependence analysis serializes the nest. A compiler
// that keyed accesses by pointer name would race here.
const AliasedPairSrc = `
float x[M];

void initrel(void) {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 9) * 0.25f; }
}

int run(void) {
    float *p = &x[0];
    float *q = &x[1];
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            p[i] = q[i] * 0.5f + 0.125f;
    }
    return 0;
}

int main(void) {
    initrel();
    return run();
}
`

// RelationalDefines sizes the relational workloads: n output elements,
// an m-element table, offset k, REPS sweeps per run. DerivedSrc and
// PtrScaleSrc require m >= n + k so the shifted window stays in
// bounds; AliasedPairSrc requires m >= n + 1.
func RelationalDefines(n, m, k, reps int) map[string]string {
	return map[string]string{
		"N":    fmt.Sprintf("%d", n),
		"M":    fmt.Sprintf("%d", m),
		"K":    fmt.Sprintf("%d", k),
		"REPS": fmt.Sprintf("%d", reps),
	}
}
