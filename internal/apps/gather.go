package apps

import "fmt"

// Fig B1 workloads: the gather y[i] = x[idx[i]] in two builds that
// differ only in what the value-range analysis can prove about idx.
//
// GatherSrc fills idx with (i*7+13) % M, so every cell is provably in
// [0, M-1]: the gather read cannot trap, the per-element bounds test is
// elided and the nest parallelizes. GatherOpaqueSrc routes the modulus
// through a global set by another function — the contents of idx stay
// unbounded, the checked read stays, and the nest is serialized for
// trap-order parity. Both produce bit-identical outputs on in-bounds
// data; the proof only removes work that could never fire.

// GatherSrc is the provable gather: idx contents in [0, M-1] by
// construction, visible to the interval analysis.
const GatherSrc = `
int idx[N];
float x[M];
float y[N];

void initgather(void) {
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 11) * 0.5f; }
    for (int i = 0; i < N; i++) { idx[i] = (i * 7 + 13) % M; }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            y[i] = x[idx[i]];
    }
    return 0;
}

int main(void) {
    initgather();
    return run();
}
`

// GatherOpaqueSrc is the same gather with the modulus hidden behind a
// setter: the global m is written by another function, so the analysis
// cannot bound idx's contents and the compiler must keep the checked,
// serialized gather.
const GatherOpaqueSrc = `
int idx[N];
float x[M];
float y[N];
int m;

void setm(int v) { m = v; }

void initgather(void) {
    setm(M);
    for (int i = 0; i < M; i++) { x[i] = (float)(i % 11) * 0.5f; }
    for (int i = 0; i < N; i++) { idx[i] = (i * 7 + 13) % m; }
}

int run(void) {
    for (int r = 0; r < REPS; r++) {
        for (int i = 0; i < N; i++)
            y[i] = x[idx[i]];
    }
    return 0;
}

int main(void) {
    initgather();
    return run();
}
`

// GatherDefines injects the gather sizes: n output elements gathered
// from an m-element table, REPS sweeps per run.
func GatherDefines(n, m, reps int) map[string]string {
	return map[string]string{
		"N":    fmt.Sprintf("%d", n),
		"M":    fmt.Sprintf("%d", m),
		"REPS": fmt.Sprintf("%d", reps),
	}
}

// GatherRef computes the gather result with the execution model's float
// semantics (idempotent across sweeps, since x and idx are constant).
func GatherRef(n, m int) []float32 {
	x := make([]float32, m)
	for i := 0; i < m; i++ {
		x[i] = float32(float64(i%11) * 0.5)
	}
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		y[i] = x[(i*7+13)%m]
	}
	return y
}
