package apps

import "fmt"

// HeatSrc is the heat-distribution application (Sect. 4.1, second code):
// a plate of N×N cells, permanently heated at one boundary point,
// iterated STEPS times with a 4-point stencil into a double buffer. The
// stencil is an external pure function, which is what lets the pure tool
// chain parallelize the space nest; the time loop carries a dependence
// and stays serial.
const HeatSrc = `
float **cur, **next;

pure float avg(pure float* up, pure float* mid, pure float* down, int j) {
    return 0.25f * (up[j] + mid[j - 1] + mid[j + 1] + down[j]);
}

void initplate(void) {
    cur = (float**)malloc(N * sizeof(float*));
    next = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        cur[i] = (float*)malloc(N * sizeof(float));
        next[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            cur[i][j] = 0.0f;
            next[i][j] = 0.0f;
        }
}

int main(void) {
    initplate();
    for (int t = 0; t < STEPS; t++) {
        cur[0][N / 2] = 100.0f;
        for (int i = 1; i < N - 1; i++)
            for (int j = 1; j < N - 1; j++)
                next[i][j] = avg((pure float*)cur[i - 1], (pure float*)cur[i], (pure float*)cur[i + 1], j);
        for (int i = 1; i < N - 1; i++)
            for (int j = 1; j < N - 1; j++)
                cur[i][j] = next[i][j];
    }
    return 0;
}
`

// HeatInlinedSrc inlines the stencil for the classic PluTo comparator.
// The paper found this version faster than pure under GCC because the
// inlined body avoids one function call per cell (Sect. 4.3.2: 47.5 vs
// 87.8 billion user-space instructions).
const HeatInlinedSrc = `
float **cur, **next;

void initplate(void) {
    cur = (float**)malloc(N * sizeof(float*));
    next = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        cur[i] = (float*)malloc(N * sizeof(float));
        next[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            cur[i][j] = 0.0f;
            next[i][j] = 0.0f;
        }
}

int main(void) {
    initplate();
    for (int t = 0; t < STEPS; t++) {
        cur[0][N / 2] = 100.0f;
        for (int i = 1; i < N - 1; i++)
            for (int j = 1; j < N - 1; j++)
                next[i][j] = 0.25f * (cur[i - 1][j] + cur[i][j - 1] + cur[i][j + 1] + cur[i + 1][j]);
        for (int i = 1; i < N - 1; i++)
            for (int j = 1; j < N - 1; j++)
                cur[i][j] = next[i][j];
    }
    return 0;
}
`

// HeatDefines injects the plate size and time steps.
func HeatDefines(n, steps int) map[string]string {
	return map[string]string{
		"N":     fmt.Sprintf("%d", n),
		"STEPS": fmt.Sprintf("%d", steps),
	}
}

// HeatRef computes the final plate with the execution model's float
// semantics for verification.
func HeatRef(n, steps int) [][]float32 {
	cur := make([][]float32, n)
	next := make([][]float32, n)
	for i := range cur {
		cur[i] = make([]float32, n)
		next[i] = make([]float32, n)
	}
	for t := 0; t < steps; t++ {
		cur[0][n/2] = 100
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				// Model semantics: float64 interior arithmetic, one
				// float32 rounding at the store / pure-function return.
				s := float64(cur[i-1][j]) + float64(cur[i][j-1]) + float64(cur[i][j+1]) + float64(cur[i+1][j])
				next[i][j] = float32(0.25 * s)
			}
		}
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				cur[i][j] = next[i][j]
			}
		}
	}
	return cur
}
