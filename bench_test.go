// Benchmarks regenerating the paper's evaluation, one per figure
// (the paper's evaluation has no numbered tables; Figs. 3–11 carry all
// results and Fig. 2 is the tiling-legality example). Each benchmark
// exercises the same code path as cmd/purebench with small workloads;
// run `go run ./cmd/purebench` for the full paper-shaped sweeps.
package purec

import (
	"fmt"
	"io"
	"testing"
	"time"

	"purec/internal/apps"
	"purec/internal/bench"
	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/poly"
	"purec/internal/rt"
	"purec/internal/transform"
)

// benchCores are the worker counts exercised per variant (the paper's
// 1..64 axis, abbreviated to keep `go test -bench=.` affordable).
var benchCores = []int{1, 8, 64}

// buildFor compiles one variant once for benchmarking.
func buildFor(b *testing.B, src string, defs map[string]string, cfg core.Config) *core.Result {
	b.Helper()
	cfg.Defines = defs
	cfg.Stdout = io.Discard
	res, err := core.Build(src, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// runMachine benchmarks repeated executions of entry (after untimed
// init) on a simulated team of the given size. ns/op reports the real
// work performed (simulated teams execute chunks sequentially); the
// additional sim-ns/op metric reports the simulated wall time at the
// requested core count — the number the paper's figures correspond to
// (see cmd/purebench for the full tables).
func runMachine(b *testing.B, res *core.Result, cores int, init, entry string) {
	b.Helper()
	team := rt.NewSimTeam(cores)
	res.Machine.SetTeam(team)
	var simTotal, realTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := res.Machine.ResetGlobals(); err != nil {
			b.Fatal(err)
		}
		if init != "" {
			if _, err := res.Machine.CallInt(init); err != nil {
				b.Fatal(err)
			}
		}
		team.TakeSim()
		start := time.Now()
		if _, err := res.Machine.CallInt(entry); err != nil {
			b.Fatal(err)
		}
		wall := time.Since(start)
		real, virt := team.TakeSim()
		simTotal += wall - real + virt
		realTotal += wall
	}
	if b.N > 0 {
		b.ReportMetric(float64(simTotal.Nanoseconds())/float64(b.N), "sim-ns/op")
	}
}

// BenchmarkFig2TilingLegality measures the polyhedral analysis of the
// paper's Fig. 2 example: dependence computation, legality test, skewing
// and the post-skew permutability proof.
func BenchmarkFig2TilingLegality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := &poly.Nest{Iters: []string{"i", "j"}}
		s := poly.NewSystem()
		s.AddLowerBound("i", poly.NewAffine(1))
		s.AddUpperBound("i", poly.NewAffine(62))
		s.AddLowerBound("j", poly.NewAffine(1))
		s.AddUpperBound("j", poly.NewAffine(62))
		n.Domain = s
		st := &poly.Statement{ID: 0}
		st.Writes = []poly.Access{{Array: "A", Write: true, Subs: []poly.Affine{poly.Var("i"), poly.Var("j")}}}
		st.Reads = []poly.Access{
			{Array: "A", Subs: []poly.Affine{poly.Var("i").Sub(poly.NewAffine(1)), poly.Var("j")}},
			{Array: "A", Subs: []poly.Affine{poly.Var("i"), poly.Var("j").Sub(poly.NewAffine(1))}},
			{Array: "A", Subs: []poly.Affine{poly.Var("i").Sub(poly.NewAffine(1)), poly.Var("j").Add(poly.NewAffine(1))}},
		}
		n.Stmts = []*poly.Statement{st}
		deps := poly.AnalyzeDeps(n)
		if poly.Permutable(n, deps) {
			b.Fatal("must not be permutable before skewing")
		}
		f, ok := poly.LegalSkew(deps, 0)
		if !ok || f != 1 {
			b.Fatal("bad skew factor")
		}
		skewed := poly.ApplySkew(n, 0, f)
		if !poly.Permutable(skewed, poly.AnalyzeDeps(skewed)) {
			b.Fatal("must be permutable after skewing")
		}
	}
}

const benchMatmulN = 64

// BenchmarkFig3MatmulGCC times the GCC-backend matmul variants of Fig. 3.
func BenchmarkFig3MatmulGCC(b *testing.B) {
	defs := apps.MatmulDefines(benchMatmulN)
	variants := []struct {
		name string
		src  string
		cfg  core.Config
	}{
		{"seq", apps.MatmulSrc, core.Config{}},
		{"PluTo", apps.MatmulInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo}},
		{"PluTo-SICA", apps.MatmulInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo, Vectorize: true}},
		{"pure", apps.MatmulSrc, core.Config{Parallelize: true}},
		{"pure-no-init-par", apps.MatmulNoInitParSrc, core.Config{Parallelize: true}},
	}
	for _, v := range variants {
		res := buildFor(b, v.src, defs, v.cfg)
		for _, c := range benchCores {
			if v.name == "seq" && c > 1 {
				continue
			}
			b.Run(fmt.Sprintf("%s/cores=%d", v.name, c), func(b *testing.B) {
				runMachine(b, res, c, "", "main")
			})
		}
	}
	b.Run("MKL/cores=8", func(b *testing.B) {
		a, bt := apps.MatmulInputs(benchMatmulN)
		team := rt.NewSimTeam(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apps.MatmulMKL(a, bt, team)
		}
	})
}

// BenchmarkFig4MatmulICC times the ICC-backend matmul variants of Fig. 4.
func BenchmarkFig4MatmulICC(b *testing.B) {
	defs := apps.MatmulDefines(benchMatmulN)
	variants := []struct {
		name string
		src  string
		cfg  core.Config
	}{
		{"PluTo", apps.MatmulInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC}},
		{"PluTo-SICA", apps.MatmulInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC, Vectorize: true}},
		{"pure", apps.MatmulSrc, core.Config{Parallelize: true, Backend: comp.BackendICC}},
	}
	for _, v := range variants {
		res := buildFor(b, v.src, defs, v.cfg)
		for _, c := range benchCores {
			b.Run(fmt.Sprintf("%s/cores=%d", v.name, c), func(b *testing.B) {
				runMachine(b, res, c, "", "main")
			})
		}
	}
}

// BenchmarkFig5MatmulSpeedup sweeps the pure variant across the core
// axis; speedup is this series against the seq entry of Fig. 3.
func BenchmarkFig5MatmulSpeedup(b *testing.B) {
	res := buildFor(b, apps.MatmulSrc, apps.MatmulDefines(benchMatmulN), core.Config{Parallelize: true})
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("pure/cores=%d", c), func(b *testing.B) {
			runMachine(b, res, c, "", "main")
		})
	}
}

const (
	benchHeatN     = 64
	benchHeatSteps = 10
)

// BenchmarkFig6Heat times the heat variants of Fig. 6.
func BenchmarkFig6Heat(b *testing.B) {
	defs := apps.HeatDefines(benchHeatN, benchHeatSteps)
	variants := []struct {
		name string
		src  string
		cfg  core.Config
	}{
		{"seq", apps.HeatSrc, core.Config{}},
		{"PluTo-SICA-gcc", apps.HeatInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo, Vectorize: true}},
		{"PluTo-SICA-icc", apps.HeatInlinedSrc, core.Config{Parallelize: true, Mode: core.ModePluTo, Backend: comp.BackendICC, Vectorize: true}},
		{"pure-gcc", apps.HeatSrc, core.Config{Parallelize: true}},
		{"pure-icc", apps.HeatSrc, core.Config{Parallelize: true, Backend: comp.BackendICC}},
	}
	for _, v := range variants {
		res := buildFor(b, v.src, defs, v.cfg)
		for _, c := range benchCores {
			if v.name == "seq" && c > 1 {
				continue
			}
			b.Run(fmt.Sprintf("%s/cores=%d", v.name, c), func(b *testing.B) {
				runMachine(b, res, c, "", "main")
			})
		}
	}
}

// BenchmarkFig7HeatSpeedup sweeps the pure heat build across cores.
func BenchmarkFig7HeatSpeedup(b *testing.B) {
	res := buildFor(b, apps.HeatSrc, apps.HeatDefines(benchHeatN, benchHeatSteps), core.Config{Parallelize: true})
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("pure/cores=%d", c), func(b *testing.B) {
			runMachine(b, res, c, "", "main")
		})
	}
}

const (
	benchSatPix   = 400
	benchSatBands = 8
	benchSatIters = 24
)

// BenchmarkFig8Satellite times the AOD retrieval variants of Fig. 8
// (compute phase only, matching the paper's kernel timing).
func BenchmarkFig8Satellite(b *testing.B) {
	defs := apps.SatelliteDefines(benchSatPix, benchSatBands, benchSatIters)
	variants := []struct {
		name string
		cfg  core.Config
	}{
		{"auto-static-gcc", core.Config{Parallelize: true}},
		{"auto-static-icc", core.Config{Parallelize: true, Backend: comp.BackendICC}},
		{"manual-dynamic-gcc", core.Config{Parallelize: true, Transform: transform.Options{Schedule: "dynamic,1"}}},
		{"manual-dynamic-icc", core.Config{Parallelize: true, Backend: comp.BackendICC, Transform: transform.Options{Schedule: "dynamic,1"}}},
	}
	for _, v := range variants {
		res := buildFor(b, apps.SatelliteSrc, defs, v.cfg)
		for _, c := range benchCores {
			b.Run(fmt.Sprintf("%s/cores=%d", v.name, c), func(b *testing.B) {
				runMachine(b, res, c, "initcube", "run")
			})
		}
	}
}

// BenchmarkFig9SatelliteSpeedup sweeps the static and dynamic builds
// across cores; their divergence at high core counts is the paper's
// load-imbalance result.
func BenchmarkFig9SatelliteSpeedup(b *testing.B) {
	defs := apps.SatelliteDefines(benchSatPix, benchSatBands, benchSatIters)
	static := buildFor(b, apps.SatelliteSrc, defs, core.Config{Parallelize: true})
	dynamic := buildFor(b, apps.SatelliteSrc, defs, core.Config{Parallelize: true,
		Transform: transform.Options{Schedule: "dynamic,1"}})
	for _, c := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("static/cores=%d", c), func(b *testing.B) {
			runMachine(b, static, c, "initcube", "run")
		})
		b.Run(fmt.Sprintf("dynamic/cores=%d", c), func(b *testing.B) {
			runMachine(b, dynamic, c, "initcube", "run")
		})
	}
}

const (
	benchLamaRows = 2000
	benchLamaNNZ  = 10
)

// BenchmarkFig10Lama times the ELL SpMV variants of Fig. 10.
func BenchmarkFig10Lama(b *testing.B) {
	defs := apps.LamaDefines(benchLamaRows, benchLamaNNZ)
	variants := []struct {
		name string
		src  string
		cfg  core.Config
	}{
		{"auto-gcc", apps.LamaSrc, core.Config{Parallelize: true}},
		{"auto-icc", apps.LamaSrc, core.Config{Parallelize: true, Backend: comp.BackendICC}},
		{"manual-gcc", apps.LamaManualSrc, core.Config{}},
		{"manual-icc", apps.LamaManualSrc, core.Config{Backend: comp.BackendICC, Vectorize: true}},
	}
	for _, v := range variants {
		res := buildFor(b, v.src, defs, v.cfg)
		for _, c := range benchCores {
			b.Run(fmt.Sprintf("%s/cores=%d", v.name, c), func(b *testing.B) {
				runMachine(b, res, c, "initell", "run")
			})
		}
	}
}

// BenchmarkFig11LamaSpeedup sweeps the automatically parallelized ELL
// SpMV across the core axis.
func BenchmarkFig11LamaSpeedup(b *testing.B) {
	res := buildFor(b, apps.LamaSrc, apps.LamaDefines(benchLamaRows, benchLamaNNZ), core.Config{Parallelize: true})
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("auto/cores=%d", c), func(b *testing.B) {
			runMachine(b, res, c, "initell", "run")
		})
	}
}

// --- Ablations for the design choices DESIGN.md calls out ---

// BenchmarkAblationTiling isolates the effect of PluTo-SICA-style
// rectangular tiling on the inlined matmul nest (cache effects are not
// the dominant term in the execution model, so tiling mostly shows its
// loop-overhead cost — kept as an honest ablation).
func BenchmarkAblationTiling(b *testing.B) {
	defs := apps.MatmulDefines(benchMatmulN)
	for _, tile := range []bool{false, true} {
		cfg := core.Config{Parallelize: true, Mode: core.ModePluTo}
		name := "untiled"
		if tile {
			cfg.Transform = transform.Options{Tile: true, TileSizes: []int{32, 32, 0}}
			name = "tiled32"
		}
		res := buildFor(b, apps.MatmulInlinedSrc, defs, cfg)
		b.Run(name+"/cores=8", func(b *testing.B) {
			runMachine(b, res, 8, "", "main")
		})
	}
}

// BenchmarkAblationVectorize isolates the fused-kernel compilation (the
// SICA/ICC SIMD analog) on the inlined matmul.
func BenchmarkAblationVectorize(b *testing.B) {
	defs := apps.MatmulDefines(benchMatmulN)
	for _, vec := range []bool{false, true} {
		cfg := core.Config{Parallelize: true, Mode: core.ModePluTo, Vectorize: vec}
		name := "scalar"
		if vec {
			name = "vectorized"
		}
		res := buildFor(b, apps.MatmulInlinedSrc, defs, cfg)
		b.Run(name+"/cores=1", func(b *testing.B) {
			runMachine(b, res, 1, "", "main")
		})
	}
}

// BenchmarkAblationInlining isolates the trivial-pure-function inliner
// (the -O2 analog) by comparing the GCC backend (inlining active) on the
// pure matmul against the same program with mult made non-inlinable
// (pointer parameter).
func BenchmarkAblationInlining(b *testing.B) {
	inlinable := apps.MatmulSrc
	res1 := buildFor(b, inlinable, apps.MatmulDefines(benchMatmulN), core.Config{Parallelize: true})
	b.Run("mult-inlined/cores=1", func(b *testing.B) {
		runMachine(b, res1, 1, "", "main")
	})
	// A variant whose helper takes pointer parameters and therefore
	// stays a call (like heat's avg).
	blocked := `
float **A, **Bt, **C;

pure float multAt(pure float* a, pure float* b, int i) {
    return a[i] * b[i];
}

pure float dot(pure float* a, pure float* b, int size) {
    float res = 0.0f;
    for (int i = 0; i < size; ++i)
        res += multAt(a, b, i);
    return res;
}

void initmat(void) {
    A = (float**)malloc(N * sizeof(float*));
    Bt = (float**)malloc(N * sizeof(float*));
    C = (float**)malloc(N * sizeof(float*));
    for (int i = 0; i < N; i++) {
        A[i] = (float*)malloc(N * sizeof(float));
        Bt[i] = (float*)malloc(N * sizeof(float));
        C[i] = (float*)malloc(N * sizeof(float));
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {
            A[i][j] = (float)((i + j) % 13) * 0.25f;
            Bt[i][j] = (float)((i - j) % 7) * 0.5f;
        }
}

int main(void) {
    initmat();
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j)
            C[i][j] = dot((pure float*)A[i], (pure float*)Bt[j], N);
    return 0;
}
`
	res2 := buildFor(b, blocked, apps.MatmulDefines(benchMatmulN), core.Config{Parallelize: true})
	b.Run("mult-not-inlinable/cores=1", func(b *testing.B) {
		runMachine(b, res2, 1, "", "main")
	})
}

// BenchmarkAblationSchedule sweeps dynamic chunk sizes on the imbalanced
// satellite workload (the paper picked dynamic,1).
func BenchmarkAblationSchedule(b *testing.B) {
	defs := apps.SatelliteDefines(benchSatPix, benchSatBands, benchSatIters)
	for _, sched := range []string{"static", "dynamic,1", "dynamic,8", "guided"} {
		cfg := core.Config{Parallelize: true}
		if sched != "static" {
			cfg.Transform = transform.Options{Schedule: sched}
		}
		res := buildFor(b, apps.SatelliteSrc, defs, cfg)
		b.Run(sched+"/cores=16", func(b *testing.B) {
			runMachine(b, res, 16, "initcube", "run")
		})
	}
}

// BenchmarkAblationSkew measures the shearing transformation: the
// in-place wavefront stencil is serial without skewing and gains inner
// parallelism with it (the Fig. 2 transformation applied end to end).
func BenchmarkAblationSkew(b *testing.B) {
	src := `
int n;
float **A;

void initw(void) {
    n = 128;
    A = (float**)malloc(n * sizeof(float*));
    for (int i = 0; i < n; i++)
        A[i] = (float*)malloc(n * sizeof(float));
    for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
            A[i][j] = (float)(i + j);
}

int run(void) {
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n - 1; ++j)
            A[i][j] = A[i - 1][j] + A[i][j - 1] + A[i - 1][j + 1];
    return 0;
}

int main(void) {
    initw();
    return run();
}
`
	for _, skew := range []bool{false, true} {
		cfg := core.Config{Parallelize: true,
			Transform: transform.Options{Skew: skew, MinParallelTrip: -1}}
		name := "no-skew(serial)"
		if skew {
			name = "skewed(parallel-inner)"
		}
		res := buildFor(b, src, nil, cfg)
		b.Run(name+"/cores=8", func(b *testing.B) {
			runMachine(b, res, 8, "initw", "run")
		})
	}
}

// BenchmarkPurityChecker measures the verification pass itself on the
// four applications (compile-time cost of the paper's contribution).
func BenchmarkPurityChecker(b *testing.B) {
	srcs := map[string]string{
		"matmul":    apps.MatmulSrc,
		"heat":      apps.HeatSrc,
		"satellite": apps.SatelliteSrc,
		"lama":      apps.LamaSrc,
	}
	defs := map[string]map[string]string{
		"matmul":    apps.MatmulDefines(64),
		"heat":      apps.HeatDefines(64, 4),
		"satellite": apps.SatelliteDefines(64, 4, 8),
		"lama":      apps.LamaDefines(64, 4),
	}
	for name, src := range srcs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{Defines: defs[name], Stdout: io.Discard}
				if _, err := core.Build(src, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompilerChain measures the tool-chain itself (preprocess,
// parse, purity check, polyhedral transform, compile) on the matmul
// program — the compile-time cost of the paper's approach.
func BenchmarkCompilerChain(b *testing.B) {
	defs := apps.MatmulDefines(64)
	b.Run("pure-full-chain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(apps.MatmulSrc, core.Config{
				Parallelize: true, Defines: defs, Stdout: io.Discard,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seq-no-polyhedral", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(apps.MatmulSrc, core.Config{
				Defines: defs, Stdout: io.Discard,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = bench.Quick // keep the harness linked for documentation purposes
}
