// Markdown link checker: every relative link in the top-level docs
// (README.md, ARCHITECTURE.md, CHANGES.md, the examples' READMEs) must
// point at a file or directory that exists in the repository, so the
// docs cannot silently rot when files move. External links (http/…)
// and intra-document anchors are not fetched.
package purec

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); image links (![alt](src)) match too
// and get the same existence check, which is what we want. Link-shaped
// text inside code spans would also match — keep literal examples in
// the docs pointing at real files.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestMarkdownLinksResolve(t *testing.T) {
	docs := []string{"README.md", "ARCHITECTURE.md", "CHANGES.md"}
	examples, err := filepath.Glob("examples/*/README.md")
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, examples...)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		base := filepath.Dir(doc)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not fetched
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				t.Errorf("%s: broken link %q: %v", doc, m[1], err)
			}
		}
	}
}

// TestDocsMentionCurrentFigures guards the flag tables against going
// stale: every figure the purebench driver accepts must appear in the
// README's figure list.
func TestDocsMentionCurrentFigures(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []string{"m1", "m2", "r1", "k1", "a1"} {
		if !strings.Contains(string(readme), "`"+fig+"`") {
			t.Errorf("README figure list lacks %q", fig)
		}
	}
}
