// Package purec is the public API of the purec tool chain, a Go
// reproduction of "Pure Functions in C: A Small Keyword for Automatic
// Parallelization" (Süß et al.).
//
// The library extends a C subset with the pure keyword, verifies that
// pure-marked functions are side-effect free, lets a polyhedral
// transformer parallelize loop nests that call such functions, and runs
// the result on an OpenMP-like goroutine runtime.
//
// Quick start:
//
//	res, err := purec.Build(src, purec.Config{
//	    Parallelize: true,
//	    TeamSize:    8,
//	})
//	if err != nil { ... }
//	ret, err := res.Machine.RunMain()
//
// See examples/ for complete programs and internal/bench for the harness
// that regenerates the paper's figures.
package purec

import (
	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/parser"
	"purec/internal/preproc"
	"purec/internal/purity"
	"purec/internal/sema"
	"purec/internal/transform"
)

// Config configures a Build; see core.Config for field documentation.
type Config = core.Config

// Result is a finished build; Result.Machine executes the program.
type Result = core.Result

// Stages holds the per-stage source snapshots of the compiler chain.
type Stages = core.Stages

// TransformOptions configures the polyhedral stage (tiling, skewing,
// schedule clause).
type TransformOptions = transform.Options

// Backend selects the compiler analog used for execution.
type Backend = comp.Backend

// Compiler backends.
const (
	BackendGCC = comp.BackendGCC
	BackendICC = comp.BackendICC
)

// Build runs the complete compiler chain of the paper's Fig. 1 on src.
func Build(src string, cfg Config) (*Result, error) {
	return core.Build(src, cfg)
}

// CheckPurity preprocesses and semantically checks src, then runs the
// purity verification pass alone, returning the names of verified pure
// functions. It is the programmatic equivalent of running only the
// PC-PrePro, GCC-E and PC-CC stages.
func CheckPurity(src string) ([]string, error) {
	stripped, _ := preproc.StripSystemIncludes(src)
	expanded, err := preproc.Expand(stripped)
	if err != nil {
		return nil, err
	}
	f, err := parser.Parse("input.c", expanded)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	pres := purity.Check(info)
	if err := pres.Err(); err != nil {
		return nil, err
	}
	var names []string
	for n := range pres.PureFuncs {
		names = append(names, n)
	}
	return names, nil
}
