// Package purec is the public API of the purec tool chain, a Go
// reproduction of "Pure Functions in C: A Small Keyword for Automatic
// Parallelization" (Süß et al.).
//
// The library extends a C subset with the pure keyword, verifies that
// pure-marked functions are side-effect free, lets a polyhedral
// transformer parallelize loop nests that call such functions, and runs
// the result on an OpenMP-like goroutine runtime.
//
// Quick start (compile and run once):
//
//	res, err := purec.Build(src, purec.Config{
//	    Parallelize: true,
//	    TeamSize:    8,
//	})
//	if err != nil { ... }
//	ret, err := res.Machine.RunMain()
//
// Compilation output is split into an immutable Program and per-run
// Processes, so one compiled artifact can serve many concurrent runs:
//
//	prog, _, _, err := purec.BuildProgram(src, purec.Config{Parallelize: true})
//	if err != nil { ... }
//	for i := 0; i < 8; i++ {
//	    go func() {
//	        proc, err := prog.NewProcess(purec.ProcOptions{})
//	        if err != nil { ... }
//	        ret, err := proc.RunMain()
//	        ...
//	    }()
//	}
//
// Repeated builds of the same (source, Config) pair are served from a
// content-addressed program cache, so the compiler chain runs once per
// distinct input — the paper's toolchain cost is paid per program, not
// per execution.
//
// Building with Config.Memoize extends the same idea to run time:
// calls of memoizable pure functions (scalar signature, global-free
// body — verified purity makes their results referentially
// transparent) are served from a sharded, concurrency-safe memo table
// shared by every Process of the Program, so repeated-argument
// workloads pay one computation per distinct argument tuple.
//
// See examples/ for complete programs and internal/bench for the harness
// that regenerates the paper's figures.
package purec

import (
	"purec/internal/comp"
	"purec/internal/core"
	"purec/internal/memo"
	"purec/internal/parser"
	"purec/internal/preproc"
	"purec/internal/purity"
	"purec/internal/sema"
	"purec/internal/transform"
)

// Config configures a Build; see core.Config for field documentation.
type Config = core.Config

// Result is a finished build; Result.Machine executes the program.
type Result = core.Result

// Artifact is the front-end output (per-stage sources + checked model).
type Artifact = core.Artifact

// Stages holds the per-stage source snapshots of the compiler chain.
type Stages = core.Stages

// Program is the immutable, concurrency-safe compile artifact.
type Program = comp.Program

// Process is one run of a Program (globals, heap, stdout, team, rand).
type Process = comp.Process

// ProcOptions configure one Process (worker team, stdout).
type ProcOptions = comp.ProcOptions

// Machine bundles one Program with one Process (sequential reuse).
type Machine = comp.Machine

// ProgramCache is a content-addressed cache of compiled Programs.
type ProgramCache = core.ProgramCache

// MemoTable is the sharded, concurrency-safe memoization table serving
// pure-call results when building with Config.Memoize; see
// ProcOptions.Memo and Program.Memo.
type MemoTable = memo.Table

// MemoStats is a snapshot of memo table counters
// (hits/misses/bypassed/evicted/entries).
type MemoStats = memo.Stats

// NewMemoTable creates a standalone memo table (capacity and shard
// count ≤ 0 select the defaults); set it as ProcOptions.Memo to share
// pure-call results across Programs built from the same source. Every
// participating Program must be built with Config.Memoize — call sites
// of a non-memoizing Program carry no memo wrappers, so the table
// would never be consulted there.
func NewMemoTable(capacity, shards int) *MemoTable {
	return memo.New(capacity, shards)
}

// TransformOptions configures the polyhedral stage (tiling, skewing,
// schedule clause).
type TransformOptions = transform.Options

// Backend selects the compiler analog used for execution.
type Backend = comp.Backend

// Compiler backends.
const (
	BackendGCC = comp.BackendGCC
	BackendICC = comp.BackendICC
)

// Engine selects closure-tree (default) or linearized-tape statement
// execution in the compiled Program; results are bit-identical.
type Engine = comp.Engine

// Execution engines.
const (
	EngineClosure = comp.EngineClosure
	EngineTape    = comp.EngineTape
)

// Build runs the complete compiler chain of the paper's Fig. 1 on src
// and pairs the compiled Program with one fresh Process as
// Result.Machine. Builds hit the program cache when (src, cfg) was seen
// before.
func Build(src string, cfg Config) (*Result, error) {
	return core.Build(src, cfg)
}

// BuildProgram runs the chain and returns the immutable Program plus
// the front-end artifact; hit reports whether the program cache served
// the build. Create one Process per concurrent run.
func BuildProgram(src string, cfg Config) (prog *Program, art *Artifact, hit bool, err error) {
	return core.BuildProgram(src, cfg)
}

// Front runs only the pipeline front end (preprocess, parse, check,
// purity, SCoP detection, polyhedral transform, lowering), producing
// the artifact a later Compile step can turn into a Program.
func Front(src string, cfg Config) (*Artifact, error) {
	return core.Front(src, cfg)
}

// NewProgramCache creates a standalone program cache holding at most
// max entries; set it as Config.Cache to isolate builds from the
// package-level default cache.
func NewProgramCache(max int) *ProgramCache {
	return core.NewProgramCache(max)
}

// CheckPurity preprocesses and semantically checks src, then runs the
// purity verification pass alone, returning the names of verified pure
// functions. It is the programmatic equivalent of running only the
// PC-PrePro, GCC-E and PC-CC stages.
func CheckPurity(src string) ([]string, error) {
	stripped, _ := preproc.StripSystemIncludes(src)
	expanded, err := preproc.Expand(stripped)
	if err != nil {
		return nil, err
	}
	f, err := parser.Parse("input.c", expanded)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(f)
	if err != nil {
		return nil, err
	}
	pres := purity.Check(info)
	if err := pres.Err(); err != nil {
		return nil, err
	}
	var names []string
	for n := range pres.PureFuncs {
		names = append(names, n)
	}
	return names, nil
}
